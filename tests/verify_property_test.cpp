#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "verify/verifier.hpp"

namespace avgpipe::verify {
namespace {

/// Randomized cross-validation of the model checker: (1) every sampled
/// flushed configuration at the derived capacity is deadlock-free with the
/// closed-form peak, and (2) the simulator's *measured* channel high-water
/// marks — one realized interleaving — never exceed the verifier's *proved*
/// peak over all interleavings.

schedule::Kind pick_kind(Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return schedule::Kind::kAfab;
    case 1: return schedule::Kind::kOneFOneB;
    default: return schedule::Kind::kAdvanceForward;
  }
}

TEST(VerifyPropertyTest, RandomConfigsAreDeadlockFreeWithClosedFormPeak) {
  Rng rng(20260805);
  for (int trial = 0; trial < 40; ++trial) {
    const schedule::Kind kind = pick_kind(rng);
    const auto k = static_cast<std::size_t>(rng.uniform_int(2, 4));
    const auto m = static_cast<std::size_t>(rng.uniform_int(2, 8));
    std::size_t advance = 0;
    if (kind == schedule::Kind::kAdvanceForward) {
      advance = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(k) - 1,
                          static_cast<std::int64_t>(m + k)));
    }
    ModelConfig cfg;
    cfg.kind = kind;
    cfg.num_stages = k;
    cfg.micro_batches = m;
    cfg.advance_num = advance;
    const Report r = verify(cfg);
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": " << schedule::to_string(kind)
                 << " K=" << k << " M=" << m << " advance=" << advance);
    ASSERT_EQ(r.verdict, Verdict::kOk) << r.diagnosis;
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.peak_link_occupancy, r.derived_link_capacity - 1);
    EXPECT_EQ(r.peak_link_occupancy,
              schedule::max_send_run_ahead(kind, k, m,
                                           advance == 0 ? k - 1 : advance));
  }
}

std::size_t channel_peak(const Report& r, const std::string& name) {
  for (const auto& ch : r.channels) {
    if (ch.name == name) return ch.peak;
  }
  ADD_FAILURE() << "no channel named " << name;
  return 0;
}

TEST(VerifyPropertyTest, SimHighWaterNeverExceedsProvedPeak) {
  const auto w = workloads::awd_profile();
  const auto cluster = workloads::v100_cluster(w.num_gpus);
  const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
  const std::size_t k = w.num_gpus;

  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const schedule::Kind kind = pick_kind(rng);
    const auto m = static_cast<std::size_t>(rng.uniform_int(2, 6));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 2));
    std::size_t advance = 0;
    if (kind == schedule::Kind::kAdvanceForward) {
      advance = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(k) - 1,
                          static_cast<std::int64_t>(m + k)));
    }
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": " << schedule::to_string(kind)
                 << " K=" << k << " M=" << m << " N=" << n
                 << " advance=" << advance);

    sim::SystemConfig sys;
    sys.kind = kind;
    sys.micro_batches = m;
    sys.num_pipelines = n;
    sys.elastic_averaging = n > 1;
    sys.advance_num = advance;
    auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 3);
    job.memory_limit = 1e18;
    const sim::SimResult sr = sim::simulate(job);
    ASSERT_EQ(sr.act_link_high_water.size(), k - 1);
    ASSERT_EQ(sr.grad_link_high_water.size(), k - 1);

    ModelConfig cfg;
    cfg.kind = kind;
    cfg.num_stages = k;
    cfg.micro_batches = m;
    cfg.advance_num = advance;
    cfg.num_batches = 2;  // covers steady-state inter-batch overlap
    const Report r = verify(cfg);
    ASSERT_EQ(r.verdict, Verdict::kOk) << r.diagnosis;

    for (std::size_t link = 0; link + 1 < k; ++link) {
      const std::string acts = "acts[" + std::to_string(link) + "]";
      const std::string grads = "grads[" + std::to_string(link) + "]";
      EXPECT_LE(sr.act_link_high_water[link], channel_peak(r, acts))
          << acts << " measured above the proved peak";
      EXPECT_LE(sr.grad_link_high_water[link], channel_peak(r, grads))
          << grads << " measured above the proved peak";
      EXPECT_LE(sr.act_link_high_water[link], r.peak_link_occupancy);
      EXPECT_LE(sr.grad_link_high_water[link], r.peak_link_occupancy);
    }
    const auto measured_max = std::max(
        *std::max_element(sr.act_link_high_water.begin(),
                          sr.act_link_high_water.end()),
        *std::max_element(sr.grad_link_high_water.begin(),
                          sr.grad_link_high_water.end()));
    EXPECT_LE(measured_max, r.derived_link_capacity - 1);
    EXPECT_GT(measured_max, 0u);
  }
}

TEST(VerifyPropertyTest, SimHighWaterIsDeterministic) {
  const auto w = workloads::toy_two_stage_profile();
  const auto cluster = workloads::v100_cluster(w.num_gpus);
  const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
  sim::SystemConfig sys;
  sys.kind = schedule::Kind::kOneFOneB;
  sys.micro_batches = 4;
  auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 2);
  job.memory_limit = 1e18;
  const auto a = sim::simulate(job);
  const auto b = sim::simulate(job);
  EXPECT_EQ(a.act_link_high_water, b.act_link_high_water);
  EXPECT_EQ(a.grad_link_high_water, b.grad_link_high_water);
}

}  // namespace
}  // namespace avgpipe::verify
