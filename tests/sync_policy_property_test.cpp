#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/avgpipe.hpp"
#include "core/scenario_matrix.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

namespace avgpipe::core {
namespace {

using data::Batch;
using data::DataLoader;
using data::SyntheticFeatures;
using tensor::Variable;

/// Randomized robustness sweep: every sync policy, under a randomly drawn
/// (but seeded) configuration and every canonical fault-scenario class, must
/// (1) terminate, (2) keep every parameter finite, and (3) keep every
/// reported loss finite. This is the property-level complement of the
/// deterministic scenario matrix — it hunts for configurations where a
/// policy's update rule amplifies a fault into NaN/Inf or a hang.

runtime::OptimizerFactory sgd_factory(double lr) {
  return [lr](std::vector<Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), lr);
  };
}

bool all_finite(const ParamSet& params) {
  for (const auto& t : params) {
    for (const double v : t.data()) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

SyncPolicyConfig random_policy_config(SyncPolicyKind kind, Rng& rng) {
  SyncPolicyConfig config;
  config.kind = kind;
  // BMUF: sample η and draw ζ inside the CBM stability region ζ ≤ 1−η.
  config.block_momentum = rng.uniform(0.0, 0.9);
  config.block_lr = rng.uniform(0.1, 1.0) * (1.0 - config.block_momentum);
  config.nesterov_restart = rng.uniform_int(0, 1) == 1;
  config.prediction_lookahead = rng.uniform(0.0, 1.5);
  config.prediction_beta = rng.uniform(0.0, 0.9);
  return config;
}

TEST(SyncPolicyPropertyTest, RandomConfigsSurviveEveryFaultScenario) {
  Rng rng(20260809);
  const std::size_t trials = 3;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    for (const SyncPolicyKind kind : all_sync_policies()) {
      for (const fault::ScenarioKind scenario : fault::all_scenarios()) {
        const auto pipelines =
            static_cast<std::size_t>(rng.uniform_int(2, 3));
        const auto micro_batches =
            static_cast<std::size_t>(rng.uniform_int(2, 4));
        const bool async = rng.uniform_int(0, 1) == 1;
        const auto sync_lag =
            static_cast<std::size_t>(rng.uniform_int(0, 2));
        const double lr = rng.uniform(0.02, 0.3);
        const auto seed =
            static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
        SCOPED_TRACE(::testing::Message()
                     << "trial " << trial << " policy " << to_string(kind)
                     << " scenario " << fault::to_string(scenario) << " N="
                     << pipelines << " M=" << micro_batches << " async="
                     << async << " lag=" << sync_lag << " lr=" << lr
                     << " seed=" << seed);

        SyntheticFeatures ds(64, 6, 2, seed, /*noise=*/0.4);
        DataLoader loader(ds, 8, seed + 1);
        const fault::FaultPlan plan =
            fault::make_scenario(scenario, pipelines, seed);

        AvgPipeConfig cfg;
        cfg.num_pipelines = pipelines;
        cfg.micro_batches = micro_batches;
        cfg.boundaries = {2};
        cfg.async_sync = async;
        cfg.sync_lag = sync_lag;
        cfg.faults = &plan;
        cfg.sync = random_policy_config(kind, rng);
        AvgPipe system(
            [](std::uint64_t s) { return nn::make_mlp(6, 8, 2, 2, s); },
            sgd_factory(lr), cfg);

        const std::size_t per_epoch = loader.batches_per_epoch();
        for (std::size_t step = 0; step < 10; ++step) {
          std::vector<Batch> batches;
          for (std::size_t p = 0; p < pipelines; ++p) {
            const std::size_t g = step * pipelines + p;
            batches.push_back(loader.batch(g / per_epoch, g % per_epoch));
          }
          const double loss = system.train_iteration(batches);
          ASSERT_TRUE(std::isfinite(loss)) << "step " << step;
        }
        system.synchronize();
        EXPECT_TRUE(all_finite(system.reference_snapshot()));
        EXPECT_TRUE(all_finite(system.broadcast_snapshot()));
        for (std::size_t p = 0; p < pipelines; ++p) {
          if (system.pipeline_alive(p)) {
            EXPECT_TRUE(all_finite(system.replica_snapshot(p)))
                << "replica " << p;
          }
        }
      }
    }
  }
}

TEST(SyncPolicyPropertyTest, RandomDegenerateConfigsHoldBitParity) {
  // The parity gate is not a property of one lucky seed: resample the
  // workload and it must still hold exactly.
  Rng rng(77);
  for (std::size_t trial = 0; trial < 2; ++trial) {
    MatrixSpec spec;
    spec.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 16));
    spec.parity_steps = 3;
    for (const SyncPolicyKind kind : all_sync_policies()) {
      SCOPED_TRACE(::testing::Message() << "seed " << spec.seed << " policy "
                                        << to_string(kind));
      const PolicyParity parity = run_parity(spec, kind);
      EXPECT_TRUE(parity.ok);
      EXPECT_EQ(parity.param_delta, 0.0);
    }
  }
}

}  // namespace
}  // namespace avgpipe::core
