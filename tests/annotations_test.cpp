#include "common/annotations.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/env.hpp"

namespace avgpipe::common {
namespace {

// -- Mutex / MutexLock / CondVar behaviour ------------------------------------

TEST(MutexTest, MutualExclusionAcrossThreads) {
  Mutex mutex;
  long counter = 0;  // guarded by mutex (locals cannot carry GUARDED_BY)
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock lock(mutex);
  EXPECT_EQ(counter, 40000);
}

TEST(MutexTest, TryLockReflectsContention) {
  Mutex mutex;
  mutex.lock();
  // Owned by this thread now: another thread must fail to acquire it. The
  // branch-on-try_lock shape is the one the thread-safety analysis tracks.
  bool other_acquired = true;
  std::thread probe([&] {
    if (mutex.try_lock()) {
      mutex.unlock();
    } else {
      other_acquired = false;
    }
  });
  probe.join();
  EXPECT_FALSE(other_acquired);
  mutex.unlock();
}

TEST(MutexTest, EarlyUnlockReleasesBeforeScopeEnd) {
  Mutex mutex;
  {
    MutexLock lock(mutex);
    lock.unlock();
    // Released: a fresh try_lock from another thread must succeed while the
    // MutexLock object is still alive.
    bool acquired = false;
    std::thread probe([&] {
      if (mutex.try_lock()) {
        acquired = true;
        mutex.unlock();
      }
    });
    probe.join();
    EXPECT_TRUE(acquired);
  }  // destructor must not double-release
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;  // guarded by mutex
  std::thread producer([&] {
    MutexLock lock(mutex);
    ready = true;
    lock.unlock();
    cv.notify_one();
  });
  {
    MutexLock lock(mutex);
    while (!ready) cv.wait(mutex, lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, WaitUntilTimesOutWithoutNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;  // guarded by mutex
  MutexLock lock(mutex);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  while (!ready) {
    if (cv.wait_until(mutex, lock, deadline) == std::cv_status::timeout) break;
  }
  EXPECT_FALSE(ready);  // nothing notified; the deadline loop must exit
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool go = false;  // guarded by mutex
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mutex);
      while (!go) cv.wait(mutex, lock);
      ++woke;
    });
  }
  {
    MutexLock lock(mutex);
    go = true;
  }
  cv.notify_all();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(RoleTest, RoleGuardIsZeroCostAndScoped) {
  // Phantom capability: acquire/release are no-ops; the value is the
  // compile-time contract. This test pins the runtime side: constructible,
  // scoped, and usable for guarded state under clang.
  Role role;
  long shadowed = 0;  // conceptually guarded by role
  {
    RoleGuard guard(role);
    shadowed = 7;
  }
  RoleGuard again(role);
  EXPECT_EQ(shadowed, 7);
}

// -- env.hpp parse semantics --------------------------------------------------

class EnvTest : public ::testing::Test {
 protected:
  // NOLINTBEGIN(concurrency-mt-unsafe) -- single-threaded test fixture.
  void SetUp() override { unsetenv(kName); }
  void TearDown() override { unsetenv(kName); }
  static void set(const char* value) { setenv(kName, value, 1); }
  // NOLINTEND(concurrency-mt-unsafe)
  static constexpr const char* kName = "AVGPIPE_ANNOTATIONS_TEST_KNOB";
};

TEST_F(EnvTest, FlagUnsetAndEmptyUseFallback) {
  EXPECT_TRUE(env_flag(kName, true));
  EXPECT_FALSE(env_flag(kName, false));
  set("");
  EXPECT_TRUE(env_flag(kName, true));
}

TEST_F(EnvTest, FlagFalseSpellings) {
  for (const char* spelling : {"0", "false", "FALSE", "Off", "no", "No"}) {
    set(spelling);
    EXPECT_FALSE(env_flag(kName, true)) << spelling;
  }
}

TEST_F(EnvTest, FlagAnyOtherValueIsTrue) {
  for (const char* spelling : {"1", "true", "on", "yes", "weird"}) {
    set(spelling);
    EXPECT_TRUE(env_flag(kName, false)) << spelling;
  }
}

TEST_F(EnvTest, IntParsesAndFallsBack) {
  EXPECT_EQ(env_int(kName, 42), 42);
  set("");
  EXPECT_EQ(env_int(kName, 42), 42);
  set("-17");
  EXPECT_EQ(env_int(kName, 42), -17);
}

TEST_F(EnvTest, IntThrowsLoudlyOnJunk) {
  set("junk");
  EXPECT_THROW(env_int(kName, 0), avgpipe::Error);
  set("12abc");
  EXPECT_THROW(env_int(kName, 0), avgpipe::Error);
}

TEST_F(EnvTest, IntOptDistinguishesUnsetFromZero) {
  EXPECT_FALSE(env_int_opt(kName).has_value());
  set("0");
  const auto v = env_int_opt(kName);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0);
}

TEST_F(EnvTest, StringEmptyBehavesLikeUnset) {
  EXPECT_EQ(env_string(kName, "fallback"), "fallback");
  set("");
  EXPECT_EQ(env_string(kName, "fallback"), "fallback");
  set("int8");
  EXPECT_EQ(env_string(kName, "fallback"), "int8");
}

}  // namespace
}  // namespace avgpipe::common
