#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/avgpipe.hpp"
#include "data/synthetic.hpp"
#include "fault/fault_plan.hpp"
#include "nn/models.hpp"
#include "trace/analysis.hpp"
#include "trace/happens_before.hpp"

namespace avgpipe {
namespace {

using core::AvgPipe;
using core::AvgPipeConfig;
using data::DataLoader;
using data::SyntheticFeatures;
using tensor::Variable;

runtime::OptimizerFactory sgd_factory(double lr) {
  return [lr](std::vector<Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), lr);
  };
}

nn::ModelFactory mlp_factory(std::size_t in, std::size_t hidden,
                             std::size_t depth, std::size_t classes) {
  return [=](std::uint64_t seed) {
    return nn::make_mlp(in, hidden, depth, classes, seed);
  };
}

struct TempDir {
  TempDir() {
    std::string tmpl = "/tmp/avgpipe_soak_test_XXXXXX";
    const char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

// Tier-1 smoke version of the chaos soak (bench/fig_fault_recovery --soak runs
// the long one): a seeded plan of mid-batch worker kills at randomized crash
// points, periodic durable checkpoints, and periodic bit-flip corruption of
// the newest checkpoint file. Invariants, every cycle:
//   - train_iteration never throws and every reported loss is finite (a lost
//     round reports 0.0 over the survivors, which still counts as contained);
//   - every killed pipeline is re-attached before the next iteration;
//   - corrupted checkpoints only ever cost fallbacks, never a crash;
//   - the collected trace replays clean through the happens-before checker
//     (crash epochs keep aborted batches from tripping the scope checks).
TEST(RecoverySoakTest, RandomizedKillRestoreCyclesPreserveInvariants) {
  const std::size_t kIters = 36;
  Rng chaos(20260809);

  fault::FaultPlan plan;
  for (long step = 2; step < static_cast<long>(kIters); step += 3) {
    fault::WorkerKill kill;
    kill.pipeline = static_cast<int>(chaos.uniform_int(0, 1));
    kill.stage = chaos.bernoulli(0.5)
                     ? fault::kAny
                     : static_cast<int>(chaos.uniform_int(0, 1));
    kill.step = step;
    kill.micro_batch = chaos.bernoulli(0.5)
                           ? fault::kAny
                           : static_cast<int>(chaos.uniform_int(0, 2));
    plan.kills.push_back(kill);
  }

  TempDir tmp;
  ckpt::CheckpointDir ckpts(tmp.path);
  trace::Tracer tracer;
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 3;
  cfg.boundaries = {2};
  cfg.checkpoints = &ckpts;
  cfg.restore_on_failure = true;
  cfg.faults = &plan;
  cfg.tracer = &tracer;
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);

  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);

  std::size_t corruptions = 0;
  for (std::size_t iter = 0; iter < kIters; ++iter) {
    const double loss =
        system.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
    EXPECT_TRUE(std::isfinite(loss)) << "iter " << iter;
    EXPECT_EQ(system.alive_pipelines(), 2u) << "iter " << iter;
    if (iter % 4 == 3) system.save_checkpoint();
    if (iter % 9 == 8 && !ckpts.entries().empty()) {
      // Chaos: corrupt the newest committed checkpoint. Later restores must
      // fall back to the previous entry, never crash.
      ckpt::flip_bit(tmp.path + "/" + ckpts.entries().back().file,
                     static_cast<std::uint64_t>(
                         chaos.uniform_int(0, (1 << 20) - 1)));
      ++corruptions;
    }
  }
  ASSERT_GT(corruptions, 0u);
  system.synchronize();

  // The directory still restores (over the corrupted entries if need be).
  ckpt::TrainState state;
  const auto res = ckpts.load_latest(&state);
  EXPECT_TRUE(res.ok) << res.error;

  const std::vector<trace::TraceEvent> events = tracer.collect();

  // Every crash episode closed: the kill count matches the plan's fired
  // records and each one re-attached (kPipelineRejoin via the restore path).
  trace::TraceAnalysis analysis(events);
  const auto episodes = analysis.recoveries();
  EXPECT_GT(episodes.size(), 2u);
  for (const auto& r : episodes) {
    EXPECT_TRUE(r.rejoined) << "pipeline " << r.pipeline << " crashed at t="
                            << r.t_crash << " and never came back";
  }
  EXPECT_EQ(analysis.checkpoint_events().size(), kIters / 4);
  EXPECT_GT(analysis.checkpoint_bytes(), 0u);
  EXPECT_FALSE(analysis.restore_events().empty());

  // Clean happens-before replay across all the crash/restore churn.
  const trace::HbReport report = trace::check_happens_before(events);
  std::string details;
  for (const auto& v : report.violations) details += v.what + "\n";
  EXPECT_TRUE(report.ok) << report.summary() << "\n" << details;
}

}  // namespace
}  // namespace avgpipe
