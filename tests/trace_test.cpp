#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "trace/analysis.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"

namespace avgpipe::trace {
namespace {

TraceEvent span(EventKind kind, std::uint32_t pipeline, std::uint32_t stage,
                int micro_batch, Seconds t0, Seconds t1, Bytes bytes = 0) {
  TraceEvent ev;
  ev.kind = kind;
  ev.pipeline = pipeline;
  ev.stage = stage;
  ev.batch = 0;
  ev.micro_batch = micro_batch;
  ev.t_begin = t0;
  ev.t_end = t1;
  ev.bytes = bytes;
  return ev;
}

TraceEvent counter(CounterId id, std::uint32_t stage, Seconds t, double value) {
  TraceEvent ev;
  ev.kind = EventKind::kCounter;
  ev.counter = id;
  ev.stage = stage;
  ev.t_begin = ev.t_end = t;
  ev.value = value;
  return ev;
}

// -- event classification ---------------------------------------------------------

TEST(TraceEventTest, KindClassification) {
  EXPECT_TRUE(is_compute(EventKind::kForward));
  EXPECT_TRUE(is_compute(EventKind::kBackward));
  EXPECT_TRUE(is_compute(EventKind::kUpdate));
  EXPECT_TRUE(is_comm(EventKind::kCommActivation));
  EXPECT_TRUE(is_comm(EventKind::kCommGradient));
  EXPECT_TRUE(is_comm(EventKind::kCommAllReduce));
  EXPECT_TRUE(is_wait(EventKind::kWaitComm));
  EXPECT_TRUE(is_wait(EventKind::kWaitBubble));
  EXPECT_FALSE(is_compute(EventKind::kCounter));
  EXPECT_FALSE(is_comm(EventKind::kElasticPull));
  EXPECT_FALSE(is_wait(EventKind::kReferenceApply));
}

TEST(TraceEventTest, EveryKindHasAName) {
  for (int k = 0; k <= static_cast<int>(EventKind::kCounter); ++k) {
    EXPECT_STRNE(to_string(static_cast<EventKind>(k)), "?");
  }
  for (int c = 0; c <= static_cast<int>(CounterId::kStaleness); ++c) {
    EXPECT_STRNE(to_string(static_cast<CounterId>(c)), "?");
  }
}

// -- collection & ordering --------------------------------------------------------

TEST(TracerTest, CollectSortsByBeginAcrossBuffers) {
  Tracer tracer;
  TraceBuffer* a = tracer.create_buffer();
  TraceBuffer* b = tracer.create_buffer();
  // Interleaved begins, recorded out of global order.
  a->record(span(EventKind::kForward, 0, 0, 0, 2.0, 3.0));
  a->record(span(EventKind::kForward, 0, 0, 1, 5.0, 6.0));
  b->record(span(EventKind::kBackward, 0, 1, 0, 1.0, 4.0));
  b->record(span(EventKind::kBackward, 0, 1, 1, 3.0, 7.0));

  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_begin, events[i].t_begin);
  }
  EXPECT_EQ(events[0].kind, EventKind::kBackward);
  EXPECT_EQ(events[1].kind, EventKind::kForward);
}

TEST(TracerTest, EqualTimestampsKeepBufferCreationOrder) {
  // Two executions that produce the same timestamps must collect to the same
  // sequence — the stable sort keeps (creation order, insertion order) for
  // ties, which the bit-identical-replay property test relies on.
  Tracer tracer;
  TraceBuffer* a = tracer.create_buffer();
  TraceBuffer* b = tracer.create_buffer();
  a->record(span(EventKind::kForward, 0, 0, 0, 1.0, 2.0));
  b->record(span(EventKind::kBackward, 0, 1, 0, 1.0, 2.0));
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kForward);
  EXPECT_EQ(events[1].kind, EventKind::kBackward);
}

TEST(TracerTest, ClearKeepsBuffersRegistered) {
  Tracer tracer;
  TraceBuffer* a = tracer.create_buffer();
  a->record(span(EventKind::kForward, 0, 0, 0, 0.0, 1.0));
  EXPECT_EQ(tracer.collect().size(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.collect().size(), 0u);
  EXPECT_EQ(tracer.num_buffers(), 1u);
  a->record(span(EventKind::kForward, 0, 0, 1, 0.0, 1.0));  // still valid
  EXPECT_EQ(tracer.collect().size(), 1u);
}

TEST(TracerTest, NestedScopedSpansBothRecorded) {
  Tracer tracer;
  TraceBuffer* buf = tracer.create_buffer();
  TraceEvent outer_proto;
  outer_proto.kind = EventKind::kForward;
  TraceEvent inner_proto;
  inner_proto.kind = EventKind::kUpdate;
  {
    ScopedSpan outer(tracer, buf, outer_proto);
    {
      ScopedSpan inner(tracer, buf, inner_proto);
    }
  }
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 2u);
  // The inner span closes first, so it appears first after the stable sort
  // unless begins differ; find each by kind to stay robust.
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const auto& ev : events) {
    if (ev.kind == EventKind::kForward) outer = &ev;
    if (ev.kind == EventKind::kUpdate) inner = &ev;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_LE(outer->t_begin, inner->t_begin);
  EXPECT_LE(inner->t_end, outer->t_end);
  EXPECT_LE(outer->t_begin, outer->t_end);
}

TEST(TracerTest, ConcurrentEmittersAndCollector) {
  // 8 emitter threads with their own buffers while the main thread collects
  // concurrently — the documented usage; run under TSan in CI.
  constexpr int kThreads = 8;
  constexpr int kEvents = 1000;
  Tracer tracer;
  std::vector<TraceBuffer*> buffers;
  for (int i = 0; i < kThreads; ++i) buffers.push_back(tracer.create_buffer());

  std::atomic<bool> done{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&tracer, buf = buffers[t], t] {
      for (int i = 0; i < kEvents; ++i) {
        TraceEvent ev;
        ev.kind = EventKind::kForward;
        ev.stage = static_cast<std::uint32_t>(t);
        ev.micro_batch = i;
        ev.t_begin = tracer.wall_now();
        ev.t_end = tracer.wall_now();
        buf->record(ev);
      }
    });
  }
  std::thread collector([&] {
    while (!done.load()) {
      const auto snapshot = tracer.collect();
      EXPECT_LE(snapshot.size(),
                static_cast<std::size_t>(kThreads) * kEvents);
    }
  });
  for (auto& t : emitters) t.join();
  done.store(true);
  collector.join();

  const auto events = tracer.collect();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kEvents);
  // Per-stage micro-batch order is preserved (single-owner buffers).
  std::vector<TraceEvent> by_stage[kThreads];
  for (const auto& ev : events) by_stage[ev.stage].push_back(ev);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(by_stage[t].size(), static_cast<std::size_t>(kEvents));
    for (int i = 0; i < kEvents; ++i) {
      EXPECT_EQ(by_stage[t][i].micro_batch, i);
    }
  }
}

// -- Chrome exporter round trip ---------------------------------------------------

std::vector<TraceEvent> diverse_events() {
  std::vector<TraceEvent> events;
  events.push_back(span(EventKind::kForward, 0, 0, 0, 0.0, 1.0 / 3.0));
  events.push_back(span(EventKind::kBackward, 1, 3, 17, 0.125, 0.875));
  events.push_back(span(EventKind::kUpdate, 0, 2, -1, 2.0, 2.5));
  events.push_back(
      span(EventKind::kCommActivation, 0, 1, 4, 1e-7, 2e-7, 123456789.0));
  events.push_back(span(EventKind::kCommGradient, 2, 0, 9, 3.0, 3.000001,
                        9.87654321e12));
  events.push_back(span(EventKind::kCommAllReduce, 0, 0, -1, 4.0, 5.0, 64.0));
  events.push_back(span(EventKind::kWaitComm, 0, 1, 2, 0.3, 0.7));
  events.push_back(span(EventKind::kWaitBubble, 1, 2, 5, 0.9, 1.1));
  events.push_back(span(EventKind::kElasticPull, 3, 0, -1, 6.0, 6.25));
  events.push_back(span(EventKind::kReferenceApply, 0, 0, -1, 6.5, 6.75));
  events.push_back(counter(CounterId::kUtilization, 2, 1.5, 0.625));
  events.push_back(counter(CounterId::kQueueDepth, 1, 2.25, 17.0));
  events.push_back(counter(CounterId::kStaleness, 0, 3.5, 2.0));
  // Awkward precision: values that lose bits unless exported at %.17g.
  events.push_back(span(EventKind::kForward, 0, 0, 1, 0.1 + 0.2, 1.0 / 7.0 + 1));
  return events;
}

TEST(ChromeTraceTest, RoundTripIsExact) {
  const auto original = diverse_events();
  std::ostringstream os;
  write_chrome_trace(os, original);
  std::istringstream is(os.str());
  const auto parsed = parse_chrome_trace(is);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i], original[i]) << "event " << i;
  }
}

TEST(ChromeTraceTest, EmitsTraceEventShape) {
  std::ostringstream os;
  write_chrome_trace(os, diverse_events());
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);  // complete spans
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);  // counters
  EXPECT_NE(doc.find("\"pid\":"), std::string::npos);
  EXPECT_NE(doc.find("\"tid\":"), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');
}

TEST(ChromeTraceTest, TimestampsAreMicroseconds) {
  std::vector<TraceEvent> events;
  events.push_back(span(EventKind::kForward, 0, 0, 0, 0.001, 0.003));
  std::ostringstream os;
  write_chrome_trace(os, events);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":2000"), std::string::npos);
}

TEST(ChromeTraceTest, RejectsMalformedInput) {
  std::istringstream not_a_trace("{\"hello\": 1}\n");
  EXPECT_THROW(parse_chrome_trace(not_a_trace), avgpipe::Error);
}

TEST(ChromeTraceTest, EmptyTraceRoundTrips) {
  std::ostringstream os;
  write_chrome_trace(os, {});
  std::istringstream is(os.str());
  EXPECT_TRUE(parse_chrome_trace(is).empty());
}

// -- analysis ---------------------------------------------------------------------

TEST(TraceAnalysisTest, BusyCommAndOverlap) {
  // Stage 0: compute [0,2] and [3,4]; inbound comm [1,2] (inside compute)
  // and [2.5, 3.5] (half inside). Overlapped comm = 1.0 + 0.5 of 2.0 total.
  std::vector<TraceEvent> events;
  events.push_back(span(EventKind::kForward, 0, 0, 0, 0.0, 2.0));
  events.push_back(span(EventKind::kBackward, 0, 0, 0, 3.0, 4.0));
  events.push_back(span(EventKind::kCommGradient, 0, 0, 0, 1.0, 2.0, 10.0));
  events.push_back(span(EventKind::kCommGradient, 0, 0, 1, 2.5, 3.5, 10.0));
  TraceAnalysis analysis(std::move(events));

  EXPECT_EQ(analysis.num_stages(), 1u);
  EXPECT_NEAR(analysis.busy_time(0), 3.0, 1e-12);
  EXPECT_NEAR(analysis.comm_time(0), 2.0, 1e-12);
  EXPECT_NEAR(analysis.comm_overlap_fraction(0), 1.5 / 2.0, 1e-12);
  EXPECT_NEAR(analysis.comm_overlap_fraction(), 1.5 / 2.0, 1e-12);
  EXPECT_NEAR(analysis.idle_fraction(0), 1.0 - 3.0 / 4.0, 1e-12);
}

TEST(TraceAnalysisTest, OverlappingPipelinesMergeIntoBusyUnion) {
  // Two pipelines on the same stage with overlapping compute: busy time is
  // the union, not the sum.
  std::vector<TraceEvent> events;
  events.push_back(span(EventKind::kForward, 0, 0, 0, 0.0, 2.0));
  events.push_back(span(EventKind::kForward, 1, 0, 0, 1.0, 3.0));
  TraceAnalysis analysis(std::move(events));
  EXPECT_EQ(analysis.num_pipelines(), 2u);
  EXPECT_NEAR(analysis.busy_time(0), 3.0, 1e-12);
}

TEST(TraceAnalysisTest, WaitTimesSplitByCause) {
  std::vector<TraceEvent> events;
  events.push_back(span(EventKind::kWaitBubble, 0, 1, 0, 0.0, 1.0));
  events.push_back(span(EventKind::kWaitComm, 0, 1, 0, 1.0, 1.5));
  TraceAnalysis analysis(std::move(events));
  EXPECT_NEAR(analysis.bubble_time(1), 1.0, 1e-12);
  EXPECT_NEAR(analysis.comm_wait_time(1), 0.5, 1e-12);
}

TEST(TraceAnalysisTest, UtilizationFromCounterSegments) {
  // φ on stage 0: 1.0 over [0,1), 0.5 over [1,3); makespan 4 (a forward span
  // stretches the horizon). Mean = (1.0 + 1.0) / 4.
  std::vector<TraceEvent> events;
  TraceEvent seg = counter(CounterId::kUtilization, 0, 0.0, 1.0);
  seg.t_end = 1.0;
  events.push_back(seg);
  seg = counter(CounterId::kUtilization, 0, 1.0, 0.5);
  seg.t_end = 3.0;
  events.push_back(seg);
  events.push_back(span(EventKind::kForward, 0, 0, 0, 0.0, 4.0));
  TraceAnalysis analysis(std::move(events));

  const StepFunction phi = analysis.utilization(0);
  EXPECT_NEAR(phi.value_at(0.5), 1.0, 1e-12);
  EXPECT_NEAR(phi.value_at(2.0), 0.5, 1e-12);
  EXPECT_NEAR(phi.integral(), 2.0, 1e-12);
  EXPECT_NEAR(analysis.mean_utilization(), 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(analysis.peak_utilization(), 1.0, 1e-12);
}

TEST(TraceAnalysisTest, CounterQuantiles) {
  std::vector<TraceEvent> events;
  for (int i = 1; i <= 4; ++i) {
    events.push_back(counter(CounterId::kQueueDepth, 0,
                             static_cast<Seconds>(i), static_cast<double>(i)));
  }
  TraceAnalysis analysis(std::move(events));
  EXPECT_NEAR(analysis.counter_quantile(0, CounterId::kQueueDepth, 0.0), 1.0,
              1e-12);
  EXPECT_NEAR(analysis.counter_quantile(0, CounterId::kQueueDepth, 1.0), 4.0,
              1e-12);
  EXPECT_NEAR(analysis.counter_quantile(0, CounterId::kQueueDepth, 0.5), 2.5,
              1e-12);
  // No samples on that stage/series -> 0.
  EXPECT_EQ(analysis.counter_quantile(3, CounterId::kStaleness, 0.5), 0.0);
}

TEST(TraceAnalysisTest, StageOpsReplaysComputeInstructionsInOrder) {
  std::vector<TraceEvent> events;
  events.push_back(span(EventKind::kForward, 0, 1, 0, 0.0, 1.0));
  events.push_back(span(EventKind::kWaitBubble, 0, 1, 1, 1.0, 1.5));
  events.push_back(span(EventKind::kForward, 0, 1, 1, 1.5, 2.0));
  events.push_back(span(EventKind::kBackward, 0, 1, 0, 2.0, 3.0));
  TraceEvent up = span(EventKind::kUpdate, 0, 1, -1, 3.0, 3.5);
  up.micro_batch = 1;
  events.push_back(up);
  // Other pipeline / stage events must not leak into the stream.
  events.push_back(span(EventKind::kForward, 1, 1, 7, 0.0, 1.0));
  events.push_back(span(EventKind::kForward, 0, 0, 8, 0.0, 1.0));
  TraceAnalysis analysis(std::move(events));

  const auto ops = analysis.stage_ops(0, 1);
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0], (schedule::Instr{schedule::OpKind::kForward, 0, 0}));
  EXPECT_EQ(ops[1], (schedule::Instr{schedule::OpKind::kForward, 0, 1}));
  EXPECT_EQ(ops[2], (schedule::Instr{schedule::OpKind::kBackward, 0, 0}));
  EXPECT_EQ(ops[3], (schedule::Instr{schedule::OpKind::kUpdate, 0, 1}));
}

TEST(TraceAnalysisTest, MetricsTableHasOneRowPerStage) {
  std::vector<TraceEvent> events;
  events.push_back(span(EventKind::kForward, 0, 0, 0, 0.0, 1.0));
  events.push_back(span(EventKind::kForward, 0, 1, 0, 1.0, 2.0));
  events.push_back(span(EventKind::kForward, 0, 2, 0, 2.0, 3.0));
  TraceAnalysis analysis(std::move(events));
  const Table table = analysis.metrics_table();
  EXPECT_EQ(table.num_rows(), 3u);
}

TEST(TraceAnalysisTest, EmptyTraceIsSafe) {
  TraceAnalysis analysis;
  EXPECT_TRUE(analysis.empty());
  EXPECT_EQ(analysis.num_stages(), 0u);
  EXPECT_EQ(analysis.busy_time(0), 0.0);
  EXPECT_EQ(analysis.comm_overlap_fraction(), 0.0);
  EXPECT_EQ(analysis.mean_utilization(), 0.0);
}

}  // namespace
}  // namespace avgpipe::trace
