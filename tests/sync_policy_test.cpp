#include "core/sync_policy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/avgpipe.hpp"
#include "core/scenario_matrix.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "trace/analysis.hpp"

namespace avgpipe::core {
namespace {

using data::Batch;
using data::DataLoader;
using data::SyntheticFeatures;
using tensor::Tensor;
using tensor::Variable;

runtime::OptimizerFactory sgd_factory(double lr) {
  return [lr](std::vector<Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), lr);
  };
}

nn::ModelFactory mlp_factory(std::size_t in, std::size_t hidden,
                             std::size_t depth, std::size_t classes) {
  return [=](std::uint64_t seed) {
    return nn::make_mlp(in, hidden, depth, classes, seed);
  };
}

std::string kind_name(const ::testing::TestParamInfo<SyncPolicyKind>& info) {
  return to_string(info.param);
}

// -- construction & configuration -------------------------------------------------------

TEST(SyncPolicyTest, FactoryBuildsEveryKindWithMatchingName) {
  for (const SyncPolicyKind kind : all_sync_policies()) {
    SyncPolicyConfig config;
    config.kind = kind;
    auto policy = make_sync_policy(config);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_EQ(policy->name(), to_string(kind));
  }
}

TEST(SyncPolicyTest, BmufStabilityConditionIsEnforcedAtConstruction) {
  // CBM stability: λ = ζ/(1−η) must not exceed 1 (Chen & Huo 2016, eq. 6).
  EXPECT_THROW(optim::BlockMomentum(0.5, 0.8), Error);  // λ = 1.6
  EXPECT_THROW(optim::BlockMomentum(1.0, 0.1), Error);  // η must be < 1
  EXPECT_THROW(optim::BlockMomentum(-0.1, 0.5), Error);
  EXPECT_THROW(optim::BlockMomentum(0.5, 0.0), Error);  // ζ must be > 0
  EXPECT_NO_THROW(optim::BlockMomentum(0.5, 0.5));      // λ = 1 exactly
  EXPECT_NO_THROW(optim::BlockMomentum(0.0, 1.0));      // degenerate config

  // The same condition guards policy construction.
  SyncPolicyConfig config;
  config.kind = SyncPolicyKind::kBmuf;
  config.block_momentum = 0.5;
  config.block_lr = 0.8;
  EXPECT_THROW(make_sync_policy(config), Error);
  config.block_lr = 0.0;  // 0 -> 1−η: exactly at the bound, allowed
  EXPECT_NO_THROW(make_sync_policy(config));
}

TEST(SyncPolicyTest, BlockMomentumEffectiveLrMatchesFormula) {
  EXPECT_DOUBLE_EQ(optim::BlockMomentum::effective_lr(0.5, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(optim::BlockMomentum::effective_lr(0.0, 1.0), 1.0);
}

// -- degenerate bit-parity (the gate making policies comparable) ------------------------

class SyncPolicyParityTest : public ::testing::TestWithParam<SyncPolicyKind> {};

TEST_P(SyncPolicyParityTest, DegenerateConfigAtNOneIsBitIdenticalToSerialSgd) {
  // Every policy at N = 1 in its degenerate configuration must track a bare
  // PipelineRuntime (serial pipelined SGD, same partitioning and
  // micro-batching) bit-for-bit: same per-step losses (EXPECT_DOUBLE_EQ) and
  // max-abs parameter delta exactly 0.0. This is what makes the scenario
  // matrix's cross-policy accuracy numbers comparable.
  const SyncPolicyKind kind = GetParam();
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);

  AvgPipeConfig cfg;
  cfg.num_pipelines = 1;
  cfg.micro_batches = 3;
  cfg.boundaries = {2};
  cfg.sync = degenerate_config(kind);
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);

  nn::Sequential serial_model = mlp_factory(6, 8, 2, 2)(1234);
  runtime::PipelineRuntime serial(serial_model, cfg.boundaries,
                                  sgd_factory(0.1),
                                  runtime::cross_entropy_loss(), cfg.kind,
                                  cfg.advance_num);

  for (std::size_t iter = 0; iter < 4; ++iter) {
    const Batch b = loader.batch(iter, 0);
    const double system_loss = system.train_iteration({b});
    const double serial_loss = serial.train_batch(b, cfg.micro_batches).loss;
    EXPECT_DOUBLE_EQ(system_loss, serial_loss) << "iter " << iter;
  }
  const double delta = max_abs_diff(system.replica_snapshot(0),
                                    clone_values(serial_model.parameters()));
  EXPECT_EQ(delta, 0.0);
}

TEST_P(SyncPolicyParityTest, RunParityAgreesWithTheGate) {
  MatrixSpec spec;
  spec.parity_steps = 3;
  const PolicyParity parity = run_parity(spec, GetParam());
  EXPECT_TRUE(parity.ok);
  EXPECT_EQ(parity.param_delta, 0.0);
  EXPECT_EQ(parity.loss_delta, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SyncPolicyParityTest,
                         ::testing::ValuesIn(all_sync_policies()), kind_name);

// -- threaded system vs serial semantic trainer -----------------------------------------

class SyncPolicyTrajectoryTest
    : public ::testing::TestWithParam<SyncPolicyKind> {};

TEST_P(SyncPolicyTrajectoryTest, SystemMatchesSemanticTrainerTrajectory) {
  // For the coupling-only policies the threaded system and AvgPipeTrainer
  // must agree (XPipe adds runtime-side weight prediction the serial trainer
  // deliberately lacks, so it is excluded here).
  const SyncPolicyKind kind = GetParam();
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);

  SyncPolicyConfig sync;
  sync.kind = kind;
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 3;
  cfg.boundaries = {2};
  cfg.sync = sync;
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);
  AvgPipeTrainer semantic(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), 2, sync);

  for (std::size_t iter = 0; iter < 3; ++iter) {
    std::vector<Batch> batches{loader.batch(iter, 0), loader.batch(iter, 1)};
    system.train_iteration(batches);
    semantic.train_iteration(batches);
  }
  const ParamSet sys_ref = system.reference_snapshot();
  const auto& sem_ref = semantic.reference().params();
  ASSERT_EQ(sys_ref.size(), sem_ref.size());
  for (std::size_t i = 0; i < sys_ref.size(); ++i) {
    EXPECT_LT(sys_ref[i].max_abs_diff(sem_ref[i]), 1e-9) << "tensor " << i;
  }
  // The broadcast reconstruction must agree too (for BMUF this is the
  // Nesterov restart point, not the raw reference weights).
  const ParamSet sys_bcast = system.broadcast_snapshot();
  // Both trainers are idle here; this thread is the reference process for
  // the direct make_broadcast probe below.
  common::RoleGuard ref_role(reference_capability());
  const ParamSet sem_bcast = semantic.policy().make_broadcast(semantic.reference());
  ASSERT_EQ(sys_bcast.size(), sem_bcast.size());
  for (std::size_t i = 0; i < sys_bcast.size(); ++i) {
    EXPECT_LT(sys_bcast[i].max_abs_diff(sem_bcast[i]), 1e-9) << "tensor " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(CouplingPolicies, SyncPolicyTrajectoryTest,
                         ::testing::Values(SyncPolicyKind::kElastic,
                                           SyncPolicyKind::kBsp,
                                           SyncPolicyKind::kBmuf),
                         kind_name);

// -- BSP ---------------------------------------------------------------------------------

TEST(BspPolicyTest, ReferenceIsExactMeanAndReplicasRestartFromIt) {
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);
  SyncPolicyConfig sync;
  sync.kind = SyncPolicyKind::kBsp;
  AvgPipeTrainer avg(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), 2, sync);

  for (std::size_t iter = 0; iter < 3; ++iter) {
    avg.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
    const auto& ref = avg.reference().params();
    for (std::size_t t = 0; t < ref.size(); ++t) {
      Tensor mean(ref[t].shape());
      mean.axpy_(0.5, avg.replica(0).parameters()[t].value());
      mean.axpy_(0.5, avg.replica(1).parameters()[t].value());
      EXPECT_LT(mean.max_abs_diff(ref[t]), 1e-12) << "tensor " << t;
    }
  }
}

// -- BMUF --------------------------------------------------------------------------------

TEST(BmufPolicyTest, BroadcastIsNesterovRestartPointNotRawWeights) {
  // After at least one filtered apply, the broadcast must carry the η·Δ
  // lookahead on top of the reference weights.
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);
  SyncPolicyConfig sync;
  sync.kind = SyncPolicyKind::kBmuf;
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 3;
  cfg.boundaries = {2};
  cfg.sync = sync;
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);

  for (std::size_t iter = 0; iter < 2; ++iter) {
    system.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
  }
  const ParamSet reference = system.reference_snapshot();
  const ParamSet broadcast = system.broadcast_snapshot();
  EXPECT_GT(max_abs_diff(reference, broadcast), 0.0);
}

TEST(BmufPolicyTest, RejoinRestoresTheNesterovRestartPoint) {
  // Regression for the rejoin path: a rejoining pipeline must receive the
  // policy's broadcast reconstruction (W + η·Δ under BMUF), not the raw
  // reference weights — otherwise it restarts one momentum step behind its
  // peers, which all begin the round from the restart point.
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);
  SyncPolicyConfig sync;
  sync.kind = SyncPolicyKind::kBmuf;
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 3;
  cfg.boundaries = {2};
  cfg.sync = sync;
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);

  system.train_iteration({loader.batch(0, 0), loader.batch(0, 1)});
  system.detach_pipeline(1, "transient failure");
  system.train_iteration({loader.batch(1, 0), loader.batch(1, 1)});
  system.rejoin_pipeline(1);

  const ParamSet restored = system.replica_snapshot(1);
  const ParamSet broadcast = system.broadcast_snapshot();
  const ParamSet reference = system.reference_snapshot();
  EXPECT_EQ(max_abs_diff(restored, broadcast), 0.0);
  EXPECT_GT(max_abs_diff(restored, reference), 0.0);

  // And training continues healthily after the rejoin.
  const double loss =
      system.train_iteration({loader.batch(2, 0), loader.batch(2, 1)});
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(BmufPolicyTest, ConvergesOnSeparableData) {
  SyntheticFeatures ds(128, 6, 2, 5, /*noise=*/0.15);
  DataLoader loader(ds, 16, 3);
  SyncPolicyConfig sync;
  sync.kind = SyncPolicyKind::kBmuf;
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 4;
  cfg.boundaries = {3};
  cfg.sync = sync;
  AvgPipe system(mlp_factory(6, 12, 2, 2), sgd_factory(0.3), cfg);
  for (std::size_t epoch = 0; epoch < 10; ++epoch) {
    for (std::size_t i = 0; i + 1 < loader.batches_per_epoch(); i += 2) {
      system.train_iteration(
          {loader.batch(epoch, i), loader.batch(epoch, i + 1)});
    }
  }
  EXPECT_GT(runtime::evaluate_accuracy(system.eval_model(), loader, 0, 4),
            0.9);
}

// -- trace integration -------------------------------------------------------------------

TEST(SyncPolicyTraceTest, BeginPoliciesEmitPolicyBroadcastSpans) {
  SyntheticFeatures ds(64, 4, 2, 3);
  DataLoader loader(ds, 8, 1);

  trace::Tracer tracer;
  SyncPolicyConfig sync;
  sync.kind = SyncPolicyKind::kBsp;
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 2;
  cfg.boundaries = {2};
  cfg.async_sync = true;
  cfg.sync_lag = 1;
  cfg.tracer = &tracer;
  cfg.sync = sync;
  AvgPipe system(mlp_factory(4, 8, 2, 2), sgd_factory(0.1), cfg);

  const std::size_t iters = 4;
  for (std::size_t iter = 0; iter < iters; ++iter) {
    system.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
  }
  system.synchronize();

  std::size_t broadcasts = 0, pulls = 0, applies = 0;
  for (const auto& ev : tracer.collect()) {
    if (ev.kind == trace::EventKind::kPolicyBroadcast) ++broadcasts;
    if (ev.kind == trace::EventKind::kElasticPull) ++pulls;
    if (ev.kind == trace::EventKind::kReferenceApply) ++applies;
  }
  // One broadcast reset per alive replica per iteration; the local-sync and
  // reference-apply counting of the elastic protocol is policy-independent.
  EXPECT_EQ(broadcasts, 2 * iters);
  EXPECT_EQ(pulls, 2 * iters);
  EXPECT_EQ(applies, iters);
}

TEST(SyncPolicyTraceTest, XPipeEmitsWeightPredictionSpansAndConverges) {
  SyntheticFeatures ds(128, 6, 2, 5, /*noise=*/0.15);
  DataLoader loader(ds, 16, 3);

  trace::Tracer tracer;
  SyncPolicyConfig sync;
  sync.kind = SyncPolicyKind::kXPipe;
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 4;
  cfg.boundaries = {3};
  cfg.tracer = &tracer;
  cfg.sync = sync;
  AvgPipe system(mlp_factory(6, 12, 2, 2), sgd_factory(0.3), cfg);

  for (std::size_t epoch = 0; epoch < 10; ++epoch) {
    for (std::size_t i = 0; i + 1 < loader.batches_per_epoch(); i += 2) {
      system.train_iteration(
          {loader.batch(epoch, i), loader.batch(epoch, i + 1)});
    }
  }
  std::size_t predictions = 0;
  for (const auto& ev : tracer.collect()) {
    if (ev.kind == trace::EventKind::kWeightPrediction) ++predictions;
  }
  // The first batch of each stage has no Δ̂ yet (no span); after that every
  // (stage, batch) predicts.
  EXPECT_GT(predictions, 0u);
  EXPECT_GT(runtime::evaluate_accuracy(system.eval_model(), loader, 0, 4),
            0.9);
}

// -- scenario matrix (tier-1 smoke) ------------------------------------------------------

TEST(ScenarioMatrixTest, TinyMatrixProducesCompleteJson) {
  // 2 policies × 2 scenarios, a few steps: the full pipeline of the bench —
  // parity gate, every cell trains and stays finite, JSON schema fields
  // present — at tier-1 cost.
  MatrixSpec spec;
  spec.policies = {SyncPolicyKind::kElastic, SyncPolicyKind::kBmuf};
  spec.scenarios = {fault::ScenarioKind::kClean,
                    fault::ScenarioKind::kCrashRejoin};
  spec.steps = 6;
  spec.eval_every = 2;
  spec.parity_steps = 2;
  spec.elastic_codecs = {tensor::Codec::kInt8};
  const MatrixResult result = run_matrix(spec);

  EXPECT_TRUE(result.parity_ok);
  EXPECT_EQ(result.parity_delta, 0.0);
  ASSERT_EQ(result.parity.size(), 2u);
  // 2 policies x 2 scenarios, plus an elastic[int8] row over both scenarios.
  ASSERT_EQ(result.cells.size(), 6u);
  for (const CellResult& cell : result.cells) {
    EXPECT_TRUE(cell.finite);
    EXPECT_TRUE(std::isfinite(cell.final_loss));
    EXPECT_GT(cell.wall_seconds, 0.0);
    EXPECT_FALSE(cell.label.empty());
    if (cell.codec == tensor::Codec::kInt8) {
      EXPECT_EQ(cell.label, "elastic[int8]");
      EXPECT_GE(cell.sync_ratio, 3.0);
    } else {
      EXPECT_DOUBLE_EQ(cell.sync_ratio, 1.0);
    }
  }

  std::ostringstream os;
  write_matrix_json(result, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"avgpipe-sync-policy-matrix-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"epochs_to_target\""), std::string::npos);
  EXPECT_NE(json.find("\"parity_ok\": true"), std::string::npos);
  EXPECT_NE(json.find("\"crash_rejoin\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"elastic[int8]\""), std::string::npos);
  EXPECT_NE(json.find("\"sync_ratio\""), std::string::npos);
}

TEST(ScenarioMatrixTest, SinglePipelineMatrixSkipsCrashRejoin) {
  MatrixSpec spec;
  spec.policies = {SyncPolicyKind::kElastic};
  spec.pipelines = 1;
  spec.steps = 2;
  spec.parity_steps = 1;
  spec.elastic_codecs = {};  // membership logic under test, not codecs
  const MatrixResult result = run_matrix(spec);
  // kClean, kStragglers, kDegradedLinks — kCrashRejoin needs >= 2 pipelines.
  EXPECT_EQ(result.cells.size(), 3u);
  for (const CellResult& cell : result.cells) {
    EXPECT_NE(cell.scenario, fault::ScenarioKind::kCrashRejoin);
  }
}

}  // namespace
}  // namespace avgpipe::core
