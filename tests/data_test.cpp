#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <set>

namespace avgpipe::data {
namespace {

TEST(SliceMicroBatchesTest, EvenSplit) {
  Batch b{tensor::Tensor({8, 3}), std::vector<int>(8, 0)};
  auto micro = slice_micro_batches(b, 4);
  ASSERT_EQ(micro.size(), 4u);
  for (const auto& m : micro) {
    EXPECT_EQ(m.batch_size(), 2u);
    EXPECT_EQ(m.targets.size(), 2u);
  }
}

TEST(SliceMicroBatchesTest, UnevenSplitDiffersByAtMostOne) {
  Batch b{tensor::Tensor({10, 2}), std::vector<int>(10, 0)};
  auto micro = slice_micro_batches(b, 4);
  ASSERT_EQ(micro.size(), 4u);
  std::size_t total = 0, mn = 100, mx = 0;
  for (const auto& m : micro) {
    total += m.batch_size();
    mn = std::min(mn, m.batch_size());
    mx = std::max(mx, m.batch_size());
  }
  EXPECT_EQ(total, 10u);
  EXPECT_LE(mx - mn, 1u);
}

TEST(SliceMicroBatchesTest, PreservesSampleContent) {
  tensor::Tensor inputs({4, 2});
  for (std::size_t i = 0; i < 8; ++i) inputs[i] = static_cast<double>(i);
  Batch b{inputs, {10, 11, 12, 13}};
  auto micro = slice_micro_batches(b, 2);
  EXPECT_EQ(micro[1].inputs[0], 4.0);  // row 2 starts at flat index 4
  EXPECT_EQ(micro[1].targets[0], 12);
}

TEST(SliceMicroBatchesTest, LmTargetsKeepPerSampleStride) {
  // [B=4, S=3] inputs with 3 targets per sample.
  Batch b{tensor::Tensor({4, 3}), std::vector<int>(12, 0)};
  for (int i = 0; i < 12; ++i) b.targets[static_cast<std::size_t>(i)] = i;
  auto micro = slice_micro_batches(b, 2);
  EXPECT_EQ(micro[0].targets.size(), 6u);
  EXPECT_EQ(micro[1].targets[0], 6);
}

TEST(SliceMicroBatchesTest, TooManyMicroBatchesThrows) {
  Batch b{tensor::Tensor({2, 2}), {0, 1}};
  EXPECT_THROW(slice_micro_batches(b, 3), Error);
}

TEST(DataLoaderTest, DeterministicShufflePerEpoch) {
  SyntheticFeatures ds(64, 4, 2, 7);
  DataLoader l1(ds, 8, 99), l2(ds, 8, 99);
  const Batch a = l1.batch(3, 2);
  const Batch b = l2.batch(3, 2);
  EXPECT_EQ(a.inputs.max_abs_diff(b.inputs), 0.0);
  EXPECT_EQ(a.targets, b.targets);
}

TEST(DataLoaderTest, EpochsDiffer) {
  SyntheticFeatures ds(64, 4, 2, 7);
  DataLoader loader(ds, 8, 99);
  const Batch a = loader.batch(0, 0);
  const Batch b = loader.batch(1, 0);
  EXPECT_GT(a.inputs.max_abs_diff(b.inputs), 0.0);
}

TEST(DataLoaderTest, BatchesPerEpoch) {
  SyntheticFeatures ds(100, 4, 2, 7);
  DataLoader loader(ds, 8, 1);
  EXPECT_EQ(loader.batches_per_epoch(), 12u);
  EXPECT_THROW(loader.batch(0, 12), Error);
}

TEST(SyntheticFeaturesTest, ClassesAreSeparable) {
  // Samples of the same class cluster around a centroid: the mean distance
  // within a class should be far below the distance between class means.
  SyntheticFeatures ds(200, 8, 2, 5, /*noise=*/0.1);
  Batch all = ds.make_batch([] {
    std::vector<std::size_t> idx(200);
    for (std::size_t i = 0; i < 200; ++i) idx[i] = i;
    return idx;
  }());
  std::vector<double> mean0(8, 0), mean1(8, 0);
  int n0 = 0, n1 = 0;
  for (std::size_t r = 0; r < 200; ++r) {
    auto& m = all.targets[r] == 0 ? mean0 : mean1;
    (all.targets[r] == 0 ? n0 : n1)++;
    for (std::size_t c = 0; c < 8; ++c) m[c] += all.inputs.at(r, c);
  }
  double dist = 0;
  for (std::size_t c = 0; c < 8; ++c) {
    dist += std::pow(mean0[c] / n0 - mean1[c] / n1, 2);
  }
  EXPECT_GT(std::sqrt(dist), 1.0);
}

TEST(SyntheticSeqTest, DeterministicAndInRange) {
  SyntheticSeqClassification ds(64, 40, 10, 4, 11);
  auto batch = ds.make_batch({0, 1, 2, 3});
  auto batch2 = ds.make_batch({0, 1, 2, 3});
  EXPECT_EQ(batch.inputs.max_abs_diff(batch2.inputs), 0.0);
  for (auto v : batch.inputs.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 40.0);
  }
}

TEST(SyntheticSeqTest, ClassTokensAreBiased) {
  SyntheticSeqClassification ds(400, 40, 20, 4, 11, /*signal=*/0.9);
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < 400; i += 4) idx.push_back(i);  // class 0 only
  auto batch = ds.make_batch(idx);
  // Class 0 owns tokens [0, 10); ~90 % of tokens should land there.
  std::size_t in_bucket = 0, total = 0;
  for (auto v : batch.inputs.data()) {
    ++total;
    if (v < 10.0) ++in_bucket;
  }
  EXPECT_GT(static_cast<double>(in_bucket) / total, 0.8);
}

TEST(SyntheticPairTest, LabelsBalanced) {
  SyntheticPairClassification ds(100, 40, 10, 4, 3);
  std::vector<std::size_t> idx(100);
  for (std::size_t i = 0; i < 100; ++i) idx[i] = i;
  auto batch = ds.make_batch(idx);
  int ones = 0;
  for (int t : batch.targets) ones += t;
  EXPECT_EQ(ones, 50);
}

TEST(SyntheticPairTest, OddSeqLenThrows) {
  EXPECT_THROW(SyntheticPairClassification(10, 40, 7, 4, 3), Error);
}

TEST(SyntheticLmTest, TargetsAreNextTokens) {
  SyntheticLanguageModel ds(1000, 20, 10, 5);
  auto batch = ds.make_batch({0, 1});
  ASSERT_EQ(batch.targets.size(), 20u);
  // target[t] == input[t+1] within a window.
  for (std::size_t t = 0; t + 1 < 10; ++t) {
    EXPECT_EQ(batch.targets[t],
              static_cast<int>(batch.inputs[t + 1]));
  }
}

TEST(SyntheticLmTest, EntropyFloorIsPositiveAndBelowUniform) {
  SyntheticLanguageModel ds(500, 20, 10, 5, /*concentration=*/0.2);
  EXPECT_GT(ds.entropy_floor(), 0.0);
  EXPECT_LT(ds.entropy_floor(), std::log(20.0));
}

TEST(SyntheticLmTest, CorpusUsesWholeVocab) {
  SyntheticLanguageModel ds(5000, 10, 10, 5);
  std::set<int> seen;
  auto batch = ds.make_batch({0, 1, 2, 3, 4, 5, 6, 7});
  for (auto v : batch.inputs.data()) seen.insert(static_cast<int>(v));
  EXPECT_GT(seen.size(), 5u);
}

}  // namespace
}  // namespace avgpipe::data
