#include <gtest/gtest.h>

#include <cstdlib>

#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "runtime/pipeline_runtime.hpp"

namespace avgpipe::runtime {
namespace {

using data::Batch;
using data::DataLoader;
using nn::Sequential;

/// The advance-forward schedule changes only *when* work runs, never *what*
/// is computed: for every advance count from the 1F1B minimum to the AFAB
/// maximum, the threaded pipeline must produce bit-comparable parameters to
/// plain training, and the stash bound must grow exactly with the advance.

OptimizerFactory sgd(double lr) {
  return [lr](std::vector<tensor::Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), lr);
  };
}

class AdvanceParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdvanceParamTest, MatchesPlainTrainingAtEveryAdvance) {
  const std::size_t advance = GetParam();
  const std::size_t micro = 6;
  data::SyntheticFeatures ds(36, 5, 3, 11);
  DataLoader loader(ds, 12, 2);

  Sequential reference = nn::make_mlp(5, 8, 3, 3, 42);
  optim::Sgd ref_opt(reference.parameters(), 0.1);

  Sequential piped = nn::make_mlp(5, 8, 3, 3, 42);
  PipelineRuntime runtime(piped, {2, 4}, sgd(0.1), cross_entropy_loss(),
                          schedule::Kind::kAdvanceForward, advance);

  for (std::size_t i = 0; i < 3; ++i) {
    const Batch batch = loader.batch(0, i);
    // Plain full-batch step.
    ref_opt.zero_grad();
    tensor::Variable in(batch.inputs);
    tensor::Variable out = reference.forward(in);
    tensor::Variable loss = tensor::softmax_cross_entropy(out, batch.targets);
    loss.backward();
    ref_opt.step();

    const BatchStats stats = runtime.train_batch(batch, micro);
    EXPECT_NEAR(stats.loss, loss.value()[0], 1e-9);
  }

  auto pr = reference.parameters();
  auto pp = runtime.model().parameters();
  for (std::size_t i = 0; i < pr.size(); ++i) {
    EXPECT_LT(pr[i].value().max_abs_diff(pp[i].value()), 1e-9)
        << "advance=" << advance << " param " << i;
  }
}

TEST_P(AdvanceParamTest, StashBoundTracksAdvance) {
  const std::size_t advance = GetParam();
  const std::size_t micro = 6;
  data::SyntheticFeatures ds(24, 5, 3, 11);
  DataLoader loader(ds, 12, 2);

  Sequential model = nn::make_mlp(5, 8, 3, 3, 42);
  PipelineRuntime runtime(model, {2, 4}, sgd(0.1), cross_entropy_loss(),
                          schedule::Kind::kAdvanceForward, advance);
  runtime.train_batch(loader.batch(0, 0), micro);

  // Stage 0's stash is warmup+1 in the interleave phase, capped by M.
  const std::size_t expected =
      std::min<std::size_t>(micro, schedule::warmup_for_stage(advance, 0,
                                                              micro) +
                                       1);
  EXPECT_LE(runtime.peak_stash(0), std::max<std::size_t>(expected, 1));
  // The last stage keeps its 1F1B-ish bound regardless of upstream advance.
  EXPECT_LE(runtime.peak_stash(2),
            schedule::warmup_for_stage(advance, 2, micro) + 1);
}

INSTANTIATE_TEST_SUITE_P(AdvanceRange, AdvanceParamTest,
                         ::testing::Values(2, 3, 4, 6, 8, 12),
                         [](const auto& info) {
                           return "advance_" + std::to_string(info.param);
                         });

TEST(AdvanceRuntimeTest, BelowMinimumThrowsAtConstruction) {
  Sequential model = nn::make_mlp(5, 8, 3, 3, 42);
  // K = 3 stages, advance 1 < K-1.
  EXPECT_THROW(PipelineRuntime(model, {2, 4}, sgd(0.1), cross_entropy_loss(),
                               schedule::Kind::kAdvanceForward, 1),
               Error);
}

TEST(AdvanceRuntimeTest, LinkCapacityTracksAdvanceBeyondWarmup) {
  // advance_num > K-1: the derived capacity is min(M, advance+1) + 1 — the
  // advance depth caps the producer's run-ahead once M outgrows it.
  Sequential model = nn::make_mlp(5, 8, 3, 3, 42);
  PipelineRuntime runtime(model, {2, 4}, sgd(0.1), cross_entropy_loss(),
                          schedule::Kind::kAdvanceForward, 5);
  EXPECT_EQ(runtime.link_capacity(3), 4u);   // min(3, 6) + 1
  EXPECT_EQ(runtime.link_capacity(6), 7u);   // min(6, 6) + 1
  EXPECT_EQ(runtime.link_capacity(12), 7u);  // advance caps the run-ahead
}

TEST(AdvanceRuntimeTest, ChannelRegrowAcrossBatchesKeepsSlackContract) {
  // Growing M across batches rebuilds the stage links at the larger derived
  // capacity. With the slack assertion armed, a steady-state send that finds
  // its link full aborts the batch loudly — so three green batches prove the
  // "+1 slack" contract held through the regrow, not just that nothing hung.
  ::setenv("AVGPIPE_ASSERT_CHANNEL_SLACK", "1", 1);
  data::SyntheticFeatures ds(48, 5, 3, 11);
  DataLoader loader(ds, 12, 2);
  Sequential model = nn::make_mlp(5, 8, 3, 3, 42);
  PipelineRuntime runtime(model, {2, 4}, sgd(0.1), cross_entropy_loss(),
                          schedule::Kind::kAdvanceForward, 4);
  EXPECT_NO_THROW(runtime.train_batch(loader.batch(0, 0), 2));
  EXPECT_NO_THROW(runtime.train_batch(loader.batch(0, 1), 6));  // regrow
  EXPECT_NO_THROW(runtime.train_batch(loader.batch(1, 0), 4));  // keep larger
  EXPECT_FALSE(runtime.failed());
  ::unsetenv("AVGPIPE_ASSERT_CHANNEL_SLACK");
}

}  // namespace
}  // namespace avgpipe::runtime
