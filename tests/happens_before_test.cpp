#include "trace/happens_before.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/avgpipe.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "sim/simulator.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"

namespace avgpipe::trace {
namespace {

/// The happens-before checker against real traces from both engines (which
/// must pass) and hand-mutated traces exercising every violation class
/// (which must fail with a pinpointed report).

TraceEvent span(EventKind kind, std::uint32_t pipeline, std::uint32_t stage,
                int batch, int micro_batch, Seconds t0, Seconds t1) {
  TraceEvent ev;
  ev.kind = kind;
  ev.pipeline = pipeline;
  ev.stage = stage;
  ev.batch = batch;
  ev.micro_batch = micro_batch;
  ev.t_begin = t0;
  ev.t_end = t1;
  return ev;
}

bool any_violation_contains(const HbReport& r, const std::string& needle) {
  for (const auto& v : r.violations) {
    if (v.what.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(HappensBeforeTest, EmptyTraceIsOk) {
  const HbReport r = check_happens_before({});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.events_checked, 0u);
}

// -- real traces ------------------------------------------------------------------

TEST(HappensBeforeTest, SimulatedTracePassesStrictCheck) {
  const auto w = workloads::toy_two_stage_profile();
  const auto cluster = workloads::v100_cluster(w.num_gpus);
  const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
  for (const auto kind : {schedule::Kind::kAfab, schedule::Kind::kOneFOneB,
                          schedule::Kind::kAdvanceForward}) {
    sim::SystemConfig sys;
    sys.kind = kind;
    sys.micro_batches = 4;
    sys.num_pipelines = 2;
    sys.elastic_averaging = true;
    auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 3);
    job.memory_limit = 1e18;
    Tracer tracer;
    job.tracer = &tracer;
    sim::simulate(job);

    HbOptions options;
    options.strict = true;  // virtual clocks ARE the causal order
    const HbReport r = check_happens_before(tracer.collect(), options);
    SCOPED_TRACE(schedule::to_string(kind));
    EXPECT_TRUE(r.ok) << (r.violations.empty() ? r.summary()
                                               : r.violations[0].what);
    EXPECT_GT(r.events_checked, 0u);
    EXPECT_GT(r.edges, 0u);
    EXPECT_EQ(r.pipelines, 2u);
  }
}

TEST(HappensBeforeTest, SimulatedTraceSurvivesChromeRoundTrip) {
  // The CI analysis job records a Chrome trace artifact and replays it
  // through the checker: serialization must preserve everything the
  // happens-before replay needs.
  const auto w = workloads::toy_two_stage_profile();
  const auto cluster = workloads::v100_cluster(w.num_gpus);
  const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
  sim::SystemConfig sys;
  sys.kind = schedule::Kind::kAdvanceForward;
  sys.micro_batches = 4;
  sys.num_pipelines = 2;
  sys.elastic_averaging = true;
  auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 2);
  job.memory_limit = 1e18;
  Tracer tracer;
  job.tracer = &tracer;
  sim::simulate(job);

  std::stringstream buffer;
  write_chrome_trace(buffer, tracer.collect());
  const auto reparsed = parse_chrome_trace(buffer);

  HbOptions options;
  options.strict = true;
  const HbReport r = check_happens_before(reparsed, options);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? r.summary()
                                             : r.violations[0].what);
  EXPECT_GT(r.edges, 0u);
}

TEST(HappensBeforeTest, ThreadedElasticRunPassesWeakCheck) {
  data::SyntheticFeatures ds(48, 6, 2, 5);
  data::DataLoader loader(ds, 12, 2);
  Tracer tracer;

  core::AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 3;
  config.boundaries = {2};
  config.sync_lag = 1;
  config.tracer = &tracer;
  core::AvgPipe system(
      [](std::uint64_t seed) { return nn::make_mlp(6, 8, 2, 2, seed); },
      [](std::vector<tensor::Variable> params) {
        return std::make_unique<optim::Sgd>(std::move(params), 0.1);
      },
      config);
  for (std::size_t iter = 0; iter < 3; ++iter) {
    system.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
  }

  HbOptions options;  // weak: wall clocks only bound span begins
  options.sync_lag = static_cast<long>(config.sync_lag);
  const HbReport r = check_happens_before(tracer.collect(), options);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? r.summary()
                                             : r.violations[0].what);
  EXPECT_EQ(r.pipelines, 2u);
  EXPECT_GT(r.edges, 0u);
  EXPECT_LE(r.max_sync_lag, static_cast<double>(config.sync_lag) + 0.5);
}

// -- mutated traces ---------------------------------------------------------------

TEST(HappensBeforeTest, DetectsMicroBatchReorderWithinStage) {
  const std::vector<TraceEvent> events{
      span(EventKind::kForward, 0, 0, 0, 1, 0.0, 1.0),
      span(EventKind::kForward, 0, 0, 0, 0, 1.0, 2.0),
  };
  const HbReport r = check_happens_before(events);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_violation_contains(r, "micro-batch reorder"))
      << r.summary();
}

TEST(HappensBeforeTest, DetectsBackwardWithoutForward) {
  const std::vector<TraceEvent> events{
      span(EventKind::kBackward, 0, 0, 0, 0, 0.0, 1.0),
  };
  const HbReport r = check_happens_before(events);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_violation_contains(r, "backward before forward"));
}

TEST(HappensBeforeTest, DetectsFifoViolationAcrossBatches) {
  // Producer order on acts[0]: b0.m0, b0.m1, b1.m0. The consumer takes
  // b1.m0 before b0.m1 — in-order per batch (so no reorder violation), but
  // out of production order on the link.
  const std::vector<TraceEvent> events{
      span(EventKind::kForward, 0, 0, 0, 0, 0.0, 0.5),
      span(EventKind::kForward, 0, 0, 0, 1, 1.0, 1.5),
      span(EventKind::kForward, 0, 0, 1, 0, 2.0, 2.5),
      span(EventKind::kForward, 0, 1, 0, 0, 10.0, 10.5),
      span(EventKind::kForward, 0, 1, 1, 0, 11.0, 11.5),
      span(EventKind::kForward, 0, 1, 0, 1, 12.0, 12.5),
  };
  const HbReport r = check_happens_before(events);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_violation_contains(r, "FIFO violation on acts[0]"))
      << r.summary();
}

TEST(HappensBeforeTest, DetectsCausalityInversionOnActivationLink) {
  // Stage 1 "consumes" b0.m0 before stage 0 even began producing it.
  const std::vector<TraceEvent> events{
      span(EventKind::kForward, 0, 1, 0, 0, 0.0, 1.0),
      span(EventKind::kForward, 0, 0, 0, 0, 2.0, 3.0),
  };
  const HbReport r = check_happens_before(events);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_violation_contains(r, "causality inversion"))
      << r.summary();
}

TEST(HappensBeforeTest, StrictModeCatchesOverlapWeakModeAllows) {
  // Downstream begins mid-span of its producer: legitimate under wall
  // clocks (the send happens before the span closes), impossible under
  // simulated virtual time.
  const std::vector<TraceEvent> events{
      span(EventKind::kForward, 0, 0, 0, 0, 0.0, 2.0),
      span(EventKind::kForward, 0, 1, 0, 0, 1.0, 3.0),
  };
  EXPECT_TRUE(check_happens_before(events).ok);
  HbOptions strict;
  strict.strict = true;
  EXPECT_FALSE(check_happens_before(events, strict).ok);
}

TEST(HappensBeforeTest, DetectsPullBeforeUpdate) {
  const std::vector<TraceEvent> events{
      span(EventKind::kElasticPull, 0, 0, -1, -1, 0.0, 1.0),
      span(EventKind::kForward, 0, 0, 0, 0, 1.0, 2.0),
      span(EventKind::kBackward, 0, 0, 0, 0, 2.0, 3.0),
      span(EventKind::kUpdate, 0, 0, 0, -1, 3.0, 4.0),
  };
  const HbReport r = check_happens_before(events);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_violation_contains(r, "elastic round")) << r.summary();
}

TEST(HappensBeforeTest, DetectsPullWithoutMatchingUpdate) {
  const std::vector<TraceEvent> events{
      span(EventKind::kForward, 0, 0, 0, 0, 0.0, 1.0),
      span(EventKind::kBackward, 0, 0, 0, 0, 1.0, 2.0),
      span(EventKind::kUpdate, 0, 0, 0, -1, 2.0, 3.0),
      span(EventKind::kElasticPull, 0, 0, -1, -1, 3.0, 4.0),
      span(EventKind::kElasticPull, 0, 0, -1, -1, 5.0, 6.0),
  };
  const HbReport r = check_happens_before(events);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_violation_contains(r, "no matching update"))
      << r.summary();
}

TEST(HappensBeforeTest, DetectsSyncLagOverrun) {
  TraceEvent counter;
  counter.kind = EventKind::kCounter;
  counter.counter = CounterId::kSyncLag;
  counter.t_begin = counter.t_end = 1.0;
  counter.value = 3.0;

  HbOptions options;
  options.sync_lag = 1;
  const HbReport r = check_happens_before({counter}, options);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_violation_contains(r, "sync_lag exceeded"));
  EXPECT_DOUBLE_EQ(r.max_sync_lag, 3.0);

  options.sync_lag = 3;
  EXPECT_TRUE(check_happens_before({counter}, options).ok);
  options.sync_lag = -1;  // disabled
  EXPECT_TRUE(check_happens_before({counter}, options).ok);
}

TEST(HappensBeforeTest, ViolationCollectionIsCapped) {
  std::vector<TraceEvent> events;
  for (int mb = 9; mb >= 0; --mb) {  // every forward after the first reorders
    events.push_back(span(EventKind::kForward, 0, 0, 0, mb, 9.0 - mb,
                          10.0 - mb));
  }
  HbOptions options;
  options.max_violations = 4;
  const HbReport r = check_happens_before(events, options);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.violations.size(), 4u);
  EXPECT_GT(r.violations_total, 4u);
}

}  // namespace
}  // namespace avgpipe::trace
