#include "optim/optimizer.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace avgpipe::optim {
namespace {

using tensor::Tensor;
using tensor::Variable;

/// Minimise f(x) = ||x - target||^2 with the given optimizer for `steps`.
/// Returns the final distance to the optimum.
double minimise_quadratic(Optimizer& opt, Variable& x, const Tensor& target,
                          int steps) {
  for (int i = 0; i < steps; ++i) {
    opt.zero_grad();
    tensor::mse_loss(x, target).backward();
    opt.step();
  }
  return x.value().max_abs_diff(target);
}

class OptimTest : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimTest, ConvergesOnQuadratic) {
  Rng rng(3);
  Variable x(Tensor::randn({8}, rng), true);
  Tensor target = Tensor::randn({8}, rng);
  auto opt = make_optimizer(GetParam(), {x}, /*lr=*/0.05);
  const double d0 = x.value().max_abs_diff(target);
  const double d1 = minimise_quadratic(*opt, x, target, 500);
  EXPECT_LT(d1, d0 * 0.1) << to_string(GetParam());
}

TEST_P(OptimTest, StepCountIncrements) {
  Variable x(Tensor::zeros({2}), true);
  auto opt = make_optimizer(GetParam(), {x}, 0.1);
  EXPECT_EQ(opt->step_count(), 0u);
  opt->zero_grad();
  tensor::mse_loss(x, Tensor::ones({2})).backward();
  opt->step();
  EXPECT_EQ(opt->step_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimTest,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kMomentum,
                                           OptimizerKind::kAdam,
                                           OptimizerKind::kAdagrad,
                                           OptimizerKind::kAsgd),
                         [](const auto& info) { return to_string(info.param); });

TEST(SgdTest, SingleStepIsLrTimesGrad) {
  Variable x(Tensor::from({1.0}), true);
  Sgd sgd({x}, 0.1);
  x.mutable_grad().copy_from(Tensor::from({2.0}));
  sgd.step();
  EXPECT_NEAR(x.value()[0], 1.0 - 0.1 * 2.0, 1e-12);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Variable x(Tensor::from({10.0}), true);
  Sgd sgd({x}, 0.1, 0.0, /*weight_decay=*/0.5);
  x.mutable_grad().zero_();
  sgd.step();
  EXPECT_LT(x.value()[0], 10.0);
}

TEST(SgdTest, MomentumAcceleratesOnConstantGradient) {
  Variable a(Tensor::from({0.0}), true);
  Variable b(Tensor::from({0.0}), true);
  Sgd plain({a}, 0.1);
  Sgd momentum({b}, 0.1, 0.9);
  for (int i = 0; i < 10; ++i) {
    a.mutable_grad().copy_from(Tensor::from({-1.0}));
    b.mutable_grad().copy_from(Tensor::from({-1.0}));
    plain.step();
    momentum.step();
    a.zero_grad();
    b.zero_grad();
  }
  EXPECT_GT(b.value()[0], a.value()[0]);
}

TEST(AdamTest, BiasCorrectionMakesFirstStepLrSized) {
  Variable x(Tensor::from({0.0}), true);
  Adam adam({x}, 0.001);
  x.mutable_grad().copy_from(Tensor::from({1e-3}));
  adam.step();
  // With bias correction, the first step is ~lr regardless of grad scale.
  EXPECT_NEAR(x.value()[0], -0.001, 1e-4);
}

TEST(AdamTest, InvariantToGradientScale) {
  Variable a(Tensor::from({0.0}), true);
  Variable b(Tensor::from({0.0}), true);
  Adam small({a}, 0.01);
  Adam large({b}, 0.01);
  for (int i = 0; i < 5; ++i) {
    a.mutable_grad().copy_from(Tensor::from({0.001}));
    b.mutable_grad().copy_from(Tensor::from({100.0}));
    small.step();
    large.step();
    a.zero_grad();
    b.zero_grad();
  }
  EXPECT_NEAR(a.value()[0], b.value()[0], 1e-5);
}

TEST(AdagradTest, StepSizesDecay) {
  Variable x(Tensor::from({0.0}), true);
  Adagrad opt({x}, 0.5);
  x.mutable_grad().copy_from(Tensor::from({1.0}));
  opt.step();
  const double first = -x.value()[0];
  const double before = x.value()[0];
  x.zero_grad();
  x.mutable_grad().copy_from(Tensor::from({1.0}));
  opt.step();
  const double second = before - x.value()[0];
  EXPECT_GT(first, second);
}

TEST(AsgdTest, AverageLagsBehindIterates) {
  Variable x(Tensor::from({0.0}), true);
  Asgd opt({x}, 0.1, /*trigger=*/0);
  for (int i = 0; i < 10; ++i) {
    x.zero_grad();
    x.mutable_grad().copy_from(Tensor::from({-1.0}));
    opt.step();
  }
  // x has marched to 1.0; the Polyak average is the mean of the trajectory.
  EXPECT_NEAR(x.value()[0], 1.0, 1e-12);
  const auto avg = opt.averaged_params();
  EXPECT_NEAR(avg[0][0], 0.55, 1e-12);  // mean of 0.1..1.0
}

TEST(AsgdTest, TriggerDelaysAveraging) {
  Variable x(Tensor::from({0.0}), true);
  Asgd opt({x}, 0.1, /*trigger=*/5);
  for (int i = 0; i < 5; ++i) {
    x.zero_grad();
    x.mutable_grad().copy_from(Tensor::from({-1.0}));
    opt.step();
  }
  // Before the trigger fires, averaged_params returns the live weights.
  EXPECT_NEAR(opt.averaged_params()[0][0], x.value()[0], 1e-12);
}

TEST(AsgdTest, SwapToAverageOverwritesWeights) {
  Variable x(Tensor::from({0.0}), true);
  Asgd opt({x}, 0.1, 0);
  for (int i = 0; i < 4; ++i) {
    x.zero_grad();
    x.mutable_grad().copy_from(Tensor::from({-1.0}));
    opt.step();
  }
  opt.swap_to_average();
  EXPECT_NEAR(x.value()[0], 0.25, 1e-12);  // mean of 0.1..0.4
}

TEST(FactoryTest, NamesRoundTrip) {
  EXPECT_EQ(to_string(OptimizerKind::kAdam), "adam");
  auto opt = make_optimizer(OptimizerKind::kAdam, {}, 0.1);
  EXPECT_EQ(opt->name(), "Adam");
}

}  // namespace
}  // namespace avgpipe::optim
