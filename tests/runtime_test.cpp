#include "runtime/pipeline_runtime.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "runtime/semantics.hpp"
#include "tensor/arena.hpp"

namespace avgpipe::runtime {
namespace {

using data::Batch;
using data::DataLoader;
using data::SyntheticFeatures;
using nn::Sequential;

OptimizerFactory sgd_factory(double lr) {
  return [lr](std::vector<tensor::Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), lr);
  };
}

/// Reference: plain single-process full-batch training step.
double reference_step(Sequential& model, optim::Optimizer& opt,
                      const Batch& batch) {
  opt.zero_grad();
  tensor::Variable in(batch.inputs);
  tensor::Variable out = model.forward(in);
  tensor::Variable loss = tensor::softmax_cross_entropy(out, batch.targets);
  loss.backward();
  opt.step();
  return loss.value()[0];
}

class PipelineRuntimeTest
    : public ::testing::TestWithParam<schedule::Kind> {};

TEST_P(PipelineRuntimeTest, MatchesSingleProcessTraining) {
  // The pipeline (any flushed schedule) must produce numerically identical
  // parameters to plain training on the same batches: schedules change only
  // execution order, never semantics.
  const std::size_t batch_size = 12, micro = 4;
  SyntheticFeatures ds(48, 6, 3, 21);
  DataLoader loader(ds, batch_size, 5);

  Sequential reference = nn::make_mlp(6, 8, 3, 3, /*seed=*/77);
  optim::Sgd ref_opt(reference.parameters(), 0.1);

  Sequential piped = nn::make_mlp(6, 8, 3, 3, /*seed=*/77);
  PipelineRuntime runtime(piped, {2, 4}, sgd_factory(0.1),
                          cross_entropy_loss(), GetParam(),
                          GetParam() == schedule::Kind::kAdvanceForward ? 3
                                                                        : 0);

  for (std::size_t i = 0; i < 4; ++i) {
    const Batch batch = loader.batch(0, i);
    const double ref_loss = reference_step(reference, ref_opt, batch);
    const BatchStats stats = runtime.train_batch(batch, micro);
    EXPECT_NEAR(stats.loss, ref_loss, 1e-9) << "batch " << i;
  }
  auto pr = reference.parameters();
  auto pp = runtime.model().parameters();
  ASSERT_EQ(pr.size(), pp.size());
  for (std::size_t i = 0; i < pr.size(); ++i) {
    EXPECT_LT(pr[i].value().max_abs_diff(pp[i].value()), 1e-9)
        << "param " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, PipelineRuntimeTest,
                         ::testing::Values(schedule::Kind::kAfab,
                                           schedule::Kind::kOneFOneB,
                                           schedule::Kind::kAdvanceForward),
                         [](const auto& info) {
                           std::string n = schedule::to_string(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(PipelineRuntimeStashTest, OneFOneBRespectsPaperBound) {
  // Paper §4.1: the k-th of K GPUs stashes at most K-k+1 (1-indexed)
  // micro-batches under 1F1B; AFAB stashes all M.
  const std::size_t micro = 6;
  SyntheticFeatures ds(24, 4, 2, 3);
  DataLoader loader(ds, 12, 1);

  Sequential m1 = nn::make_mlp(4, 6, 3, 2, 1);
  PipelineRuntime f1b(m1, {2, 4}, sgd_factory(0.1), cross_entropy_loss(),
                      schedule::Kind::kOneFOneB);
  f1b.train_batch(loader.batch(0, 0), micro);
  EXPECT_LE(f1b.peak_stash(0), 3u);  // K=3, stage 0 -> K-0 = 3
  EXPECT_LE(f1b.peak_stash(2), 1u);

  Sequential m2 = nn::make_mlp(4, 6, 3, 2, 1);
  PipelineRuntime afab(m2, {2, 4}, sgd_factory(0.1), cross_entropy_loss(),
                       schedule::Kind::kAfab);
  afab.train_batch(loader.batch(0, 0), micro);
  EXPECT_EQ(afab.peak_stash(0), micro);
}

TEST(PipelineRuntimeTest, LossDecreasesOverTraining) {
  SyntheticFeatures ds(64, 8, 4, 9, /*noise=*/0.3);
  DataLoader loader(ds, 16, 2);
  Sequential model = nn::make_mlp(8, 16, 2, 4, 33);
  PipelineRuntime runtime(model, {2}, sgd_factory(0.2), cross_entropy_loss(),
                          schedule::Kind::kAdvanceForward);
  double first = 0, last = 0;
  for (std::size_t epoch = 0; epoch < 6; ++epoch) {
    for (std::size_t i = 0; i < loader.batches_per_epoch(); ++i) {
      const double loss = runtime.train_batch(loader.batch(epoch, i), 4).loss;
      if (epoch == 0 && i == 0) first = loss;
      last = loss;
    }
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(PipelineRuntimeTest, StageWorkerShareIsBitInvariant) {
  // Training with intra-stage kernel parallelism (worker share > 1) must be
  // bit-identical to the serial share: GEMM row-block ownership is disjoint,
  // so AVGPIPE_STAGE_THREADS can only change timing, never the trajectory.
  // Hidden width 64 pushes the hidden-to-hidden GEMMs past the blocked-path
  // threshold so the fan-out actually engages.
  const std::size_t micro = 4;
  SyntheticFeatures ds(48, 6, 3, 21);
  DataLoader loader(ds, 12, 5);
  std::vector<double> base_losses;
  std::vector<double> base_params;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    Sequential model = nn::make_mlp(6, 64, 3, 3, /*seed=*/77);
    PipelineRuntime runtime(model, {2, 4}, sgd_factory(0.1),
                            cross_entropy_loss(), schedule::Kind::kOneFOneB);
    runtime.set_stage_workers(workers);
    EXPECT_EQ(runtime.stage_workers(), workers);
    std::vector<double> losses;
    for (std::size_t i = 0; i < 4; ++i) {
      losses.push_back(runtime.train_batch(loader.batch(0, i), micro).loss);
    }
    std::vector<double> params;
    for (auto& p : model.parameters()) {
      const auto v = p.value().data();
      params.insert(params.end(), v.begin(), v.end());
    }
    if (base_losses.empty()) {
      base_losses = std::move(losses);
      base_params = std::move(params);
    } else {
      EXPECT_EQ(losses, base_losses) << "workers=" << workers;
      EXPECT_EQ(params, base_params) << "workers=" << workers;
    }
  }
}

TEST(PipelineRuntimeTest, SingleStageWorks) {
  SyntheticFeatures ds(16, 4, 2, 3);
  DataLoader loader(ds, 8, 1);
  Sequential model = nn::make_mlp(4, 6, 1, 2, 1);
  PipelineRuntime runtime(model, {}, sgd_factory(0.1), cross_entropy_loss());
  const BatchStats stats = runtime.train_batch(loader.batch(0, 0), 2);
  EXPECT_GT(stats.loss, 0.0);
}

TEST(PipelineRuntimeTest, RejectsFlushFreeKinds) {
  Sequential model = nn::make_mlp(4, 6, 1, 2, 1);
  EXPECT_THROW(PipelineRuntime(model, {}, sgd_factory(0.1),
                               cross_entropy_loss(),
                               schedule::Kind::kPipeDream),
               Error);
}

// -- communication: capacities and zero-copy ----------------------------------------

TEST(PipelineRuntimeChannelTest, LinkCapacityDerivesFromSchedule) {
  // Capacity = max in-flight micro-batches per link + 1 slot of slack, so a
  // send at the exact schedule bound never parks. AFAB admits all M at once;
  // 1F1B/AFP are bounded by the warm-up depth max(advance_num, K-1) + 1.
  Sequential model = nn::make_mlp(4, 6, 3, 2, 1);  // K = 3 stages
  PipelineRuntime afab(model, {2, 4}, sgd_factory(0.1), cross_entropy_loss(),
                       schedule::Kind::kAfab);
  EXPECT_EQ(afab.link_capacity(6), 7u);   // M + 1
  EXPECT_EQ(afab.link_capacity(2), 3u);

  Sequential m2 = nn::make_mlp(4, 6, 3, 2, 1);
  PipelineRuntime f1b(m2, {2, 4}, sgd_factory(0.1), cross_entropy_loss(),
                      schedule::Kind::kOneFOneB);
  EXPECT_EQ(f1b.link_capacity(6), 4u);    // min(6, (K-1)+1) + 1
  EXPECT_EQ(f1b.link_capacity(2), 3u);    // min(2, 3) + 1

  Sequential m3 = nn::make_mlp(4, 6, 3, 2, 1);
  PipelineRuntime afp(m3, {2, 4}, sgd_factory(0.1), cross_entropy_loss(),
                      schedule::Kind::kAdvanceForward, /*advance_num=*/3);
  EXPECT_EQ(afp.link_capacity(6), 5u);    // min(6, max(3, K-1)+1) + 1
  EXPECT_EQ(afp.link_capacity(2), 3u);    // min(2, 4) + 1
}

TEST(PipelineRuntimeChannelTest, EnvOverrideWinsOverDerivation) {
  ASSERT_EQ(setenv("AVGPIPE_CHANNEL_CAPACITY", "9", 1), 0);
  Sequential model = nn::make_mlp(4, 6, 3, 2, 1);
  PipelineRuntime runtime(model, {2, 4}, sgd_factory(0.1),
                          cross_entropy_loss(), schedule::Kind::kOneFOneB);
  unsetenv("AVGPIPE_CHANNEL_CAPACITY");
  EXPECT_EQ(runtime.link_capacity(2), 9u);
  EXPECT_EQ(runtime.link_capacity(64), 9u);
  // The override must not break execution semantics.
  SyntheticFeatures ds(16, 4, 2, 3);
  DataLoader loader(ds, 8, 1);
  const BatchStats stats = runtime.train_batch(loader.batch(0, 0), 2);
  EXPECT_TRUE(std::isfinite(stats.loss));
}

TEST(PipelineRuntimeChannelTest, SteadyStateSendsAreZeroCopy) {
  // The send path transfers tensor ownership instead of cloning, so a
  // steady-state step performs a fixed number of arena acquires (any added
  // deep copy shows up as extra acquires) and is served from the free lists
  // (heap allocations flat-line after warm-up).
  SyntheticFeatures ds(48, 6, 3, 21);
  DataLoader loader(ds, 12, 1);
  Sequential model = nn::make_mlp(6, 8, 3, 3, 77);
  PipelineRuntime runtime(model, {2, 4}, sgd_factory(0.1),
                          cross_entropy_loss(),
                          schedule::Kind::kAdvanceForward, /*advance_num=*/3);
  const Batch batch = loader.batch(0, 0);
  for (int i = 0; i < 4; ++i) runtime.train_batch(batch, 4);  // warm up

  std::vector<std::uint64_t> acquires, heap_allocs;
  for (int i = 0; i < 4; ++i) {
    tensor::arena::reset_stats();
    runtime.train_batch(batch, 4);
    const auto s = tensor::arena::stats();
    acquires.push_back(s.acquires);
    heap_allocs.push_back(s.heap_allocs);
  }
  for (std::size_t i = 1; i < acquires.size(); ++i) {
    EXPECT_EQ(acquires[i], acquires[0]) << "step " << i;
  }
  // The arena's free lists are thread-local, so a buffer handed across a
  // stage link dies on the consumer's thread and the producer re-allocates:
  // a small constant per-step heap cost. It must be flat (not growing) and
  // a small fraction of total acquires — a deep copy per micro-batch would
  // multiply it.
  EXPECT_LE(heap_allocs.back(), heap_allocs.front())
      << "heap allocations growing across steady-state steps";
  for (std::size_t i = 0; i < heap_allocs.size(); ++i) {
    EXPECT_LE(heap_allocs[i], acquires[0] / 10)
        << "step " << i << " heap-allocating: send path copies?";
  }
}

// -- semantic trainers ------------------------------------------------------------------

TEST(SyncTrainerTest, MatchesManualTraining) {
  SyntheticFeatures ds(32, 4, 2, 3);
  DataLoader loader(ds, 8, 1);
  Sequential manual = nn::make_mlp(4, 6, 2, 2, 55);
  optim::Sgd manual_opt(manual.parameters(), 0.1);
  // Model and optimizer must share parameters.
  Sequential model = nn::make_mlp(4, 6, 2, 2, 55);
  auto opt = std::make_unique<optim::Sgd>(model.parameters(), 0.1);
  SyncTrainer t2(model, std::move(opt));
  for (int i = 0; i < 3; ++i) {
    const Batch b = loader.batch(0, static_cast<std::size_t>(i));
    const double manual_loss = reference_step(manual, manual_opt, b);
    const double trainer_loss = t2.train_batch(b);
    EXPECT_NEAR(manual_loss, trainer_loss, 1e-12);
  }
}

TEST(StalenessTrainerTest, ZeroDelayPerBatchEqualsSync) {
  SyntheticFeatures ds(32, 4, 2, 3);
  DataLoader loader(ds, 8, 1);

  Sequential sync_model = nn::make_mlp(4, 6, 2, 2, 55);
  auto sync_opt = std::make_unique<optim::Sgd>(sync_model.parameters(), 0.1);
  SyncTrainer sync(sync_model, std::move(sync_opt));

  Sequential stale_model = nn::make_mlp(4, 6, 2, 2, 55);
  auto stale_opt = std::make_unique<optim::Sgd>(stale_model.parameters(), 0.1);
  StalenessTrainer stale(stale_model, std::move(stale_opt), /*delay=*/0,
                         /*micro_batches=*/1, /*per_micro=*/false, "test");

  for (int i = 0; i < 3; ++i) {
    const Batch b = loader.batch(0, static_cast<std::size_t>(i));
    EXPECT_NEAR(sync.train_batch(b), stale.train_batch(b), 1e-12);
  }
  auto ps = sync.eval_model().parameters();
  auto pt = stale.eval_model().parameters();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_LT(ps[i].value().max_abs_diff(pt[i].value()), 1e-12);
  }
}

TEST(StalenessTrainerTest, DelayedGradientsDivergeFromSync) {
  SyntheticFeatures ds(32, 4, 2, 3);
  DataLoader loader(ds, 8, 1);

  Sequential a = nn::make_mlp(4, 6, 2, 2, 55);
  auto oa = std::make_unique<optim::Sgd>(a.parameters(), 0.1);
  SyncTrainer sync(a, std::move(oa));

  Sequential b = nn::make_mlp(4, 6, 2, 2, 55);
  auto ob = std::make_unique<optim::Sgd>(b.parameters(), 0.1);
  StalenessTrainer stale(b, std::move(ob), /*delay=*/3, /*micro_batches=*/4,
                         /*per_micro=*/true, "pipedream");

  for (int i = 0; i < 4; ++i) {
    const Batch batch = loader.batch(0, static_cast<std::size_t>(i));
    sync.train_batch(batch);
    stale.train_batch(batch);
  }
  auto pa = sync.eval_model().parameters();
  auto pb = stale.eval_model().parameters();
  double diff = 0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    diff = std::max(diff, pa[i].value().max_abs_diff(pb[i].value()));
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(EvaluateTest, AccuracyAndLossOnSeparableData) {
  SyntheticFeatures ds(128, 6, 2, 3, /*noise=*/0.1);
  DataLoader loader(ds, 16, 7);
  Sequential model = nn::make_mlp(6, 12, 2, 2, 99);
  auto opt = std::make_unique<optim::Adam>(model.parameters(), 0.01);
  SyncTrainer trainer(model, std::move(opt));
  for (std::size_t epoch = 0; epoch < 8; ++epoch) {
    for (std::size_t i = 0; i < loader.batches_per_epoch(); ++i) {
      trainer.train_batch(loader.batch(epoch, i));
    }
  }
  EXPECT_GT(evaluate_accuracy(trainer.eval_model(), loader, 0, 4), 0.9);
  EXPECT_LT(evaluate_loss(trainer.eval_model(), loader, 0, 4), 0.5);
}

}  // namespace
}  // namespace avgpipe::runtime
