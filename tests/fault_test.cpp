#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "fault/shim.hpp"
#include "nn/models.hpp"
#include "partition/partitioner.hpp"
#include "runtime/pipeline_runtime.hpp"
#include "sim/simulator.hpp"
#include "tensor/ops.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"
#include "workloads/cluster.hpp"
#include "workloads/profile.hpp"

namespace avgpipe::fault {
namespace {

// -- plan queries -------------------------------------------------------------------

TEST(FaultPlanTest, EmptyPlanMatchesNothing) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.compute_factor(0, 0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.straggler_factor(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(plan.send_delay(0, 0), 0.0);
  EXPECT_FALSE(plan.should_drop(0, 0, 0, 42, 0, nullptr));
  EXPECT_EQ(plan.crash_for(0), nullptr);
}

TEST(FaultPlanTest, StragglerWindowsComposeMultiplicatively) {
  FaultPlan plan;
  plan.stragglers.push_back({0, kAny, 2.0, 1.0, 3.0, 0, kNoStepLimit});
  plan.stragglers.push_back({kAny, 1, 1.5, 0.0, kForever, 0, kNoStepLimit});
  EXPECT_DOUBLE_EQ(plan.compute_factor(0, 0, 0.5), 1.0);   // before window
  EXPECT_DOUBLE_EQ(plan.compute_factor(0, 0, 2.0), 2.0);   // inside window
  EXPECT_DOUBLE_EQ(plan.compute_factor(0, 1, 2.0), 3.0);   // both stack
  EXPECT_DOUBLE_EQ(plan.compute_factor(1, 1, 2.0), 1.5);   // wrong pipeline
  EXPECT_DOUBLE_EQ(plan.compute_factor(0, 0, 3.0), 1.0);   // t_end exclusive
}

TEST(FaultPlanTest, StepWindowsGateRuntimeQueries) {
  FaultPlan plan;
  StragglerFault s;
  s.factor = 4.0;
  s.step_begin = 2;
  s.step_end = 5;
  plan.stragglers.push_back(s);
  EXPECT_DOUBLE_EQ(plan.straggler_factor(0, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(plan.straggler_factor(0, 0, 2), 4.0);
  EXPECT_DOUBLE_EQ(plan.straggler_factor(0, 0, 4), 4.0);
  EXPECT_DOUBLE_EQ(plan.straggler_factor(0, 0, 5), 1.0);
}

TEST(FaultPlanTest, DropOutcomeIsDeterministicInSeedKeyAttempt) {
  FaultPlan plan;
  plan.seed = 7;
  MessageDrop d;
  d.probability = 0.5;
  plan.drops.push_back(d);

  // The same (key, attempt) must decide identically on every call: drop
  // randomness is stateless hashing, never a shared RNG.
  for (int key = 0; key < 64; ++key) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const bool a = plan.should_drop(0, 0, 0, key, attempt, nullptr);
      const bool b = plan.should_drop(0, 0, 0, key, attempt, nullptr);
      EXPECT_EQ(a, b);
    }
  }

  // With p=0.5 over 64 keys, both outcomes must occur (astronomically
  // unlikely otherwise), and a different seed must change the pattern.
  int dropped = 0, changed = 0;
  FaultPlan other = plan;
  other.seed = 8;
  for (int key = 0; key < 64; ++key) {
    const bool a = plan.should_drop(0, 0, 0, key, 0, nullptr);
    dropped += a ? 1 : 0;
    changed += a != other.should_drop(0, 0, 0, key, 0, nullptr) ? 1 : 0;
  }
  EXPECT_GT(dropped, 0);
  EXPECT_LT(dropped, 64);
  EXPECT_GT(changed, 0);
}

TEST(FaultPlanTest, DropCountRespectsMaxDropsCap) {
  FaultPlan plan;
  MessageDrop d;
  d.probability = 1.0;  // every attempt lost...
  d.max_drops = 3;      // ...but the simulator caps the consecutive losses
  d.retry_timeout = 0.25;
  plan.drops.push_back(d);
  Seconds penalty = 0;
  EXPECT_EQ(plan.drop_count(0, 0, 0, 0, LinkDir::kActivation, &penalty), 3u);
  EXPECT_DOUBLE_EQ(penalty, 0.25);
}

TEST(FaultPlanTest, MessageKeyDistinguishesIdentityFields) {
  const std::uint64_t base = message_key(1, 2, 3, LinkDir::kActivation);
  EXPECT_NE(base, message_key(2, 2, 3, LinkDir::kActivation));
  EXPECT_NE(base, message_key(1, 3, 3, LinkDir::kActivation));
  EXPECT_NE(base, message_key(1, 2, 4, LinkDir::kActivation));
  EXPECT_NE(base, message_key(1, 2, 3, LinkDir::kGradient));
  EXPECT_EQ(base, message_key(1, 2, 3, LinkDir::kActivation));
}

TEST(BackoffTest, DoublesUntilCapAndExhaustsDeadline) {
  Backoff b(0.1, 0.4, 1.0);
  EXPECT_TRUE(b.can_retry());
  EXPECT_DOUBLE_EQ(b.next_timeout(), 0.1);
  EXPECT_DOUBLE_EQ(b.next_timeout(), 0.2);
  EXPECT_DOUBLE_EQ(b.next_timeout(), 0.4);
  EXPECT_DOUBLE_EQ(b.next_timeout(), 0.3);  // clamped to remaining budget
  EXPECT_FALSE(b.can_retry());
  EXPECT_EQ(b.attempts(), 4u);
}

// -- JSON round trip ----------------------------------------------------------------

TEST(FaultPlanJsonTest, RoundTripPreservesEveryField) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.stragglers.push_back({1, 0, 2.5, 3.0, 9.0, 2, 7});
  LinkDegradation ld;
  ld.link = 0;
  ld.bandwidth_factor = 0.25;
  ld.extra_latency = 0.01;
  ld.t_begin = 1.0;
  ld.t_end = 4.0;
  plan.link_degradations.push_back(ld);
  MessageDrop d;
  d.pipeline = 0;
  d.stage = 1;
  d.probability = 0.4;
  d.max_drops = 2;
  d.retry_timeout = 0.002;
  plan.drops.push_back(d);
  PipelineCrash c;
  c.pipeline = 1;
  c.t_crash = 5.0;
  c.t_rejoin = 8.0;
  c.resync_seconds = 0.5;
  c.crash_at_step = 3;
  c.rejoin_at_step = 6;
  plan.crashes.push_back(c);

  const FaultPlan back = FaultPlan::parse_json(plan.to_json());
  EXPECT_EQ(back.seed, plan.seed);
  ASSERT_EQ(back.stragglers.size(), 1u);
  EXPECT_EQ(back.stragglers[0].pipeline, 1);
  EXPECT_DOUBLE_EQ(back.stragglers[0].factor, 2.5);
  EXPECT_DOUBLE_EQ(back.stragglers[0].t_begin, 3.0);
  EXPECT_EQ(back.stragglers[0].step_end, 7);
  ASSERT_EQ(back.link_degradations.size(), 1u);
  EXPECT_DOUBLE_EQ(back.link_degradations[0].bandwidth_factor, 0.25);
  EXPECT_DOUBLE_EQ(back.link_degradations[0].extra_latency, 0.01);
  ASSERT_EQ(back.drops.size(), 1u);
  EXPECT_DOUBLE_EQ(back.drops[0].probability, 0.4);
  EXPECT_EQ(back.drops[0].max_drops, 2);
  ASSERT_EQ(back.crashes.size(), 1u);
  EXPECT_DOUBLE_EQ(back.crashes[0].t_crash, 5.0);
  EXPECT_DOUBLE_EQ(back.crashes[0].resync_seconds, 0.5);
  EXPECT_EQ(back.crashes[0].crash_at_step, 3);
  EXPECT_EQ(back.crashes[0].rejoin_at_step, 6);
}

TEST(FaultPlanJsonTest, OpenEndedWindowsSurviveRoundTrip) {
  FaultPlan plan;
  StragglerFault s;
  s.factor = 2.0;
  plan.stragglers.push_back(s);  // default [0, forever) x [0, no-limit)
  const FaultPlan back = FaultPlan::parse_json(plan.to_json());
  ASSERT_EQ(back.stragglers.size(), 1u);
  EXPECT_EQ(back.stragglers[0].t_end, kForever);
  EXPECT_EQ(back.stragglers[0].step_end, kNoStepLimit);
}

TEST(FaultPlanJsonTest, InvalidValuesThrow) {
  EXPECT_THROW(FaultPlan::parse_json("{\"stragglers\":[{\"factor\":0.5}]}"),
               Error);
  EXPECT_THROW(FaultPlan::parse_json(
                   "{\"drops\":[{\"probability\":1.5}]}"),
               Error);
  EXPECT_THROW(FaultPlan::parse_json(
                   "{\"link_degradations\":[{\"bandwidth_factor\":0.0}]}"),
               Error);
  EXPECT_THROW(FaultPlan::load_file("/nonexistent/plan.json"), Error);
}

// -- simulator integration ----------------------------------------------------------

sim::SimJob fault_toy_job(std::size_t pipelines, trace::Tracer* tracer,
                          const FaultPlan* faults) {
  auto w = workloads::toy_two_stage_profile();
  auto cluster = workloads::v100_cluster(2);
  auto part = partition::uniform_partition(w.layers.size(), 2);
  sim::SystemConfig sys;
  sys.kind = schedule::Kind::kOneFOneB;
  sys.micro_batches = 4;
  sys.num_pipelines = pipelines;
  sys.elastic_averaging = pipelines > 1;
  sim::SimJob job = sim::build_job(w, cluster, part, sys, w.batch_size, 4);
  job.tracer = tracer;
  job.faults = faults;
  return job;
}

TEST(SimFaultTest, EmptyPlanIsIndistinguishableFromNoPlan) {
  // Zero-cost shim: a present-but-empty plan must not perturb a single
  // event — same makespan, bit-identical trace.
  trace::Tracer base_tracer, empty_tracer;
  const FaultPlan empty;
  const sim::SimResult base =
      sim::simulate(fault_toy_job(1, &base_tracer, nullptr));
  const sim::SimResult with_empty =
      sim::simulate(fault_toy_job(1, &empty_tracer, &empty));
  EXPECT_EQ(base.makespan, with_empty.makespan);
  const auto a = base_tracer.collect();
  const auto b = empty_tracer.collect();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(SimFaultTest, SeededPlanYieldsBitIdenticalTraces) {
  FaultPlan plan;
  plan.seed = 99;
  plan.stragglers.push_back({0, 0, 1.7, 0.0, kForever, 0, kNoStepLimit});
  MessageDrop d;
  d.probability = 0.5;
  d.retry_timeout = 1e-3;
  plan.drops.push_back(d);

  trace::Tracer ta, tb;
  const sim::SimResult ra = sim::simulate(fault_toy_job(2, &ta, &plan));
  const sim::SimResult rb = sim::simulate(fault_toy_job(2, &tb, &plan));
  EXPECT_EQ(ra.makespan, rb.makespan);
  const auto a = ta.collect();
  const auto b = tb.collect();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "event " << i << " diverged";
  }
}

TEST(SimFaultTest, StragglerSlowsTheRunAndLeavesSpans) {
  trace::Tracer tracer;
  const sim::SimResult clean = sim::simulate(fault_toy_job(1, nullptr,
                                                           nullptr));
  FaultPlan plan;
  plan.stragglers.push_back({0, 0, 3.0, 0.0, kForever, 0, kNoStepLimit});
  const sim::SimResult slow = sim::simulate(fault_toy_job(1, &tracer, &plan));
  EXPECT_GT(slow.makespan, clean.makespan * 1.2);

  trace::TraceAnalysis analysis(tracer.collect());
  EXPECT_GT(analysis.straggler_delay(0), 0.0);
  EXPECT_DOUBLE_EQ(analysis.straggler_delay(1), 0.0);
  bool saw_straggler = false;
  for (const auto& ev : analysis.fault_events()) {
    saw_straggler |= ev.kind == trace::EventKind::kFaultStraggler;
  }
  EXPECT_TRUE(saw_straggler);
}

TEST(SimFaultTest, DegradedLinkStretchesCommunication) {
  const sim::SimResult clean = sim::simulate(fault_toy_job(1, nullptr,
                                                           nullptr));
  FaultPlan plan;
  LinkDegradation ld;
  ld.bandwidth_factor = 0.2;  // 5x slower wire, whole run
  plan.link_degradations.push_back(ld);
  trace::Tracer tracer;
  const sim::SimResult slow = sim::simulate(fault_toy_job(1, &tracer, &plan));
  EXPECT_GT(slow.makespan, clean.makespan);
  bool saw_window = false;
  for (const auto& ev : tracer.collect()) {
    saw_window |= ev.kind == trace::EventKind::kLinkDegraded;
  }
  EXPECT_TRUE(saw_window);
}

TEST(SimFaultTest, CrashAndRejoinAreTracedAndPaired) {
  // Scale the crash window off the healthy makespan so the test is robust to
  // profile changes.
  const sim::SimResult healthy =
      sim::simulate(fault_toy_job(2, nullptr, nullptr));
  FaultPlan plan;
  PipelineCrash c;
  c.pipeline = 1;
  c.t_crash = healthy.makespan * 0.25;
  c.t_rejoin = healthy.makespan * 0.5;
  c.resync_seconds = healthy.makespan * 0.05;
  plan.crashes.push_back(c);

  trace::Tracer tracer;
  const sim::SimResult r = sim::simulate(fault_toy_job(2, &tracer, &plan));
  EXPECT_GT(r.makespan, 0.0);

  trace::TraceAnalysis analysis(tracer.collect());
  const auto recoveries = analysis.recoveries();
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_EQ(recoveries[0].pipeline, 1u);
  EXPECT_TRUE(recoveries[0].rejoined);
  EXPECT_NEAR(recoveries[0].t_crash, c.t_crash, 1e-9);
  EXPECT_GT(recoveries[0].latency, 0.0);
}

TEST(SimFaultTest, PermanentCrashStopsOnePipelineCleanly) {
  const sim::SimResult healthy =
      sim::simulate(fault_toy_job(2, nullptr, nullptr));
  FaultPlan plan;
  PipelineCrash c;
  c.pipeline = 1;
  c.t_crash = healthy.makespan * 0.3;  // never rejoins
  plan.crashes.push_back(c);
  trace::Tracer tracer;
  const sim::SimResult r = sim::simulate(fault_toy_job(2, &tracer, &plan));
  EXPECT_GT(r.makespan, 0.0);
  trace::TraceAnalysis analysis(tracer.collect());
  const auto recoveries = analysis.recoveries();
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_FALSE(recoveries[0].rejoined);
}

// -- threaded-runtime integration ---------------------------------------------------

runtime::OptimizerFactory sgd_factory(double lr) {
  return [lr](std::vector<tensor::Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), lr);
  };
}

TEST(RuntimeFaultTest, WorkerExceptionCarriesStageAndInstruction) {
  data::SyntheticFeatures ds(24, 4, 2, 3);
  data::DataLoader loader(ds, 12, 1);
  nn::Sequential model = nn::make_mlp(4, 6, 3, 2, 1);
  int calls = 0;
  // A loss head that blows up mid-batch stands in for any model bug on the
  // last stage.
  runtime::LossFn bomb = [&calls](const tensor::Variable& logits,
                                  const std::vector<int>& targets) {
    if (++calls == 2) throw Error("injected model bug");
    return tensor::softmax_cross_entropy(logits, targets);
  };
  runtime::PipelineRuntime rt(model, {2, 4}, sgd_factory(0.1), bomb,
                              schedule::Kind::kOneFOneB);
  try {
    rt.train_batch(loader.batch(0, 0), 4);
    FAIL() << "expected the injected failure to surface";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stage 2"), std::string::npos) << what;
    EXPECT_NE(what.find("[F b0."), std::string::npos) << what;
    EXPECT_NE(what.find("injected model bug"), std::string::npos) << what;
  }
  EXPECT_TRUE(rt.failed());
  // A failed runtime is permanently dead: the stored failure resurfaces.
  EXPECT_THROW(rt.train_batch(loader.batch(0, 0), 4), Error);
}

TEST(RuntimeFaultTest, CertainDropsDeclareTheLinkDead) {
  data::SyntheticFeatures ds(24, 4, 2, 3);
  data::DataLoader loader(ds, 12, 1);
  nn::Sequential model = nn::make_mlp(4, 6, 3, 2, 1);
  runtime::PipelineRuntime rt(model, {2, 4}, sgd_factory(0.1),
                              runtime::cross_entropy_loss(),
                              schedule::Kind::kOneFOneB);
  FaultPlan plan;
  MessageDrop d;
  d.probability = 1.0;  // every retry lost: the sender must give up
  d.retry_timeout = 1e-4;
  plan.drops.push_back(d);
  rt.set_faults(&plan);
  try {
    rt.train_batch(loader.batch(0, 0), 4);
    FAIL() << "expected the dead link to fail the batch";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("link declared dead"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(rt.failed());
}

TEST(RuntimeFaultTest, StragglerCompletesAndIsTraced) {
  data::SyntheticFeatures ds(24, 4, 2, 3);
  data::DataLoader loader(ds, 12, 1);
  nn::Sequential model = nn::make_mlp(4, 6, 3, 2, 1);
  trace::Tracer tracer;
  runtime::PipelineRuntime rt(model, {2}, sgd_factory(0.1),
                              runtime::cross_entropy_loss(),
                              schedule::Kind::kOneFOneB);
  rt.set_tracer(&tracer);
  FaultPlan plan;
  plan.stragglers.push_back({kAny, 0, 1.5, 0.0, kForever, 0, kNoStepLimit});
  rt.set_faults(&plan);
  const auto stats = rt.train_batch(loader.batch(0, 0), 4);
  EXPECT_TRUE(std::isfinite(stats.loss));
  EXPECT_FALSE(rt.failed());
  bool saw_straggler = false;
  for (const auto& ev : tracer.collect()) {
    saw_straggler |= ev.kind == trace::EventKind::kFaultStraggler &&
                     ev.stage == 0;
  }
  EXPECT_TRUE(saw_straggler);
}

TEST(RuntimeFaultTest, SurvivableDropsOnlyDelayTheBatch) {
  data::SyntheticFeatures ds(24, 4, 2, 3);
  data::DataLoader loader(ds, 12, 1);

  // Same model/batch with and without a lossy link: numerics must agree
  // exactly — the shim retries delivery, it never changes payloads.
  nn::Sequential clean_model = nn::make_mlp(4, 6, 3, 2, 5);
  runtime::PipelineRuntime clean(clean_model, {2}, sgd_factory(0.1),
                                 runtime::cross_entropy_loss(),
                                 schedule::Kind::kOneFOneB);
  const double clean_loss = clean.train_batch(loader.batch(0, 0), 4).loss;

  nn::Sequential lossy_model = nn::make_mlp(4, 6, 3, 2, 5);
  runtime::PipelineRuntime lossy(lossy_model, {2}, sgd_factory(0.1),
                                 runtime::cross_entropy_loss(),
                                 schedule::Kind::kOneFOneB);
  FaultPlan plan;
  plan.seed = 3;
  MessageDrop d;
  d.probability = 0.4;
  d.retry_timeout = 1e-4;
  plan.drops.push_back(d);
  lossy.set_faults(&plan);
  const double lossy_loss = lossy.train_batch(loader.batch(0, 0), 4).loss;
  EXPECT_DOUBLE_EQ(clean_loss, lossy_loss);

  auto cp = clean_model.parameters();
  auto lp = lossy_model.parameters();
  ASSERT_EQ(cp.size(), lp.size());
  for (std::size_t i = 0; i < cp.size(); ++i) {
    EXPECT_DOUBLE_EQ(cp[i].value().max_abs_diff(lp[i].value()), 0.0);
  }
}

}  // namespace
}  // namespace avgpipe::fault
