#include <gtest/gtest.h>

#include "common/stats.hpp"

#include "tuning/tuner.hpp"

namespace avgpipe::tuning {
namespace {

/// Predictor validation on the actual paper workloads (the toy-profile
/// checks live in tuning_test.cpp): Equations (1)-(8) must track the
/// simulator closely enough to rank settings correctly on GNMT, BERT and
/// AWD — that is the property the whole tuning method rests on.

class PaperPredictorTest : public ::testing::TestWithParam<const char*> {
 protected:
  static workloads::WorkloadProfile profile_of(const std::string& name) {
    if (name == "GNMT") return workloads::gnmt_profile();
    if (name == "BERT") return workloads::bert_profile();
    return workloads::awd_profile();
  }

  void SetUp() override {
    workload_ = profile_of(GetParam());
    cluster_ = workloads::v100_cluster(workload_.num_gpus);
    const auto part = partition::pipedream_partition(workload_, cluster_,
                                                     workload_.num_gpus);
    sim::SystemConfig sys;
    sys.kind = schedule::Kind::kAdvanceForward;
    sys.micro_batches = 1;
    job_ = sim::build_job(workload_, cluster_, part, sys,
                          workload_.batch_size, 4);
    const std::size_t profile_m =
        std::max<std::size_t>(2, workload_.batch_size / 8);
    profile_ = run_profile(job_, profile_m, 1, /*batches=*/8);
  }

  workloads::WorkloadProfile workload_;
  workloads::ClusterSpec cluster_;
  sim::SimJob job_;
  Profile profile_;
};

TEST_P(PaperPredictorTest, IdentityPredictionWithinFactorTwo) {
  const Prediction p = predict(profile_, profile_.m, profile_.n,
                               workload_.batch_size, 0.0);
  EXPECT_GT(p.t_batch, 0.0);
  EXPECT_LT(p.t_batch, 2.0 * profile_.time_per_batch);
  EXPECT_GT(p.t_batch, 0.5 * profile_.time_per_batch);
}

TEST_P(PaperPredictorTest, RankingMostlyAgreesWithSimulation) {
  struct Setting {
    std::size_t m, n;
  };
  std::vector<Setting> settings;
  for (std::size_t m = 1; m <= workload_.batch_size; m *= 4) {
    settings.push_back({m, 1});
    settings.push_back({m, 2});
  }
  std::vector<double> predicted, measured;
  for (const auto& s : settings) {
    predicted.push_back(
        predict(profile_, s.m, s.n, workload_.batch_size, 0.0).t_per_sample);
    bool oom = false;
    measured.push_back(measure_setting(job_, workload_.batch_size, s.m, s.n,
                                       0.0, &oom, 3));
  }
  int concordant = 0, total = 0;
  for (std::size_t i = 0; i < settings.size(); ++i) {
    for (std::size_t j = i + 1; j < settings.size(); ++j) {
      // Skip near-ties, which are rank-unstable by construction.
      if (relative_difference(measured[i], measured[j]) < 0.05) continue;
      ++total;
      if ((predicted[i] < predicted[j]) == (measured[i] < measured[j])) {
        ++concordant;
      }
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GE(static_cast<double>(concordant) / total, 0.6) << GetParam();
}

TEST_P(PaperPredictorTest, MemoryPredictionTracksSimulation) {
  // Eq. (8) against measured peaks for a few settings, within 2x (it cannot
  // see schedule-dependent stash detail or the reference model).
  for (std::size_t m : {4u, 8u}) {
    for (std::size_t n : {1u, 2u}) {
      if (m > workload_.batch_size) continue;
      const Prediction p =
          predict(profile_, m, n, workload_.batch_size, 0.0);
      sim::SimJob job = job_;
      job.micro_batches = m;
      job.num_pipelines = n;
      job.elastic_averaging = n > 1;
      job.kind = schedule::Kind::kAdvanceForward;
      job.memory_limit = 1e18;
      const auto r = sim::simulate(job);
      Bytes peak = 0;
      for (const auto& g : r.gpus) peak = std::max(peak, g.peak_memory);
      EXPECT_GT(p.peak_memory, 0.4 * peak) << "m=" << m << " n=" << n;
      EXPECT_LT(p.peak_memory, 2.5 * peak) << "m=" << m << " n=" << n;
    }
  }
}

TEST_P(PaperPredictorTest, ProfilingTunerBeatsBothGuidelines) {
  // §7.3's bottom line on the real workloads: the profiling-based method is
  // never worse than the better of the two naive guidelines (small slack
  // for simulator noise).
  auto grid = default_grid(workload_.batch_size, 4);
  const Bytes limit = cluster_.gpu.memory;
  const auto prof = profiling_tuner(job_, workload_.batch_size, grid, limit);
  const auto mn = max_num_guideline(job_, workload_.batch_size, grid, limit);
  const auto ms = max_size_guideline(job_, workload_.batch_size, grid, limit);
  ASSERT_TRUE(prof.feasible);
  const double best_guideline =
      std::min(mn.feasible ? mn.time_per_sample : 1e300,
               ms.feasible ? ms.time_per_sample : 1e300);
  EXPECT_LE(prof.time_per_sample, best_guideline * 1.10) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Workloads, PaperPredictorTest,
                         ::testing::Values("GNMT", "BERT", "AWD"));

}  // namespace
}  // namespace avgpipe::tuning
