# Empty dependencies file for avgpipe_data.
# This may be replaced when dependencies are built.
