# Empty compiler generated dependencies file for avgpipe_data.
# This may be replaced when dependencies are built.
