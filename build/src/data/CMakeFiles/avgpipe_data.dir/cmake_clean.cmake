file(REMOVE_RECURSE
  "CMakeFiles/avgpipe_data.dir/dataset.cpp.o"
  "CMakeFiles/avgpipe_data.dir/dataset.cpp.o.d"
  "CMakeFiles/avgpipe_data.dir/synthetic.cpp.o"
  "CMakeFiles/avgpipe_data.dir/synthetic.cpp.o.d"
  "libavgpipe_data.a"
  "libavgpipe_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
