file(REMOVE_RECURSE
  "libavgpipe_data.a"
)
