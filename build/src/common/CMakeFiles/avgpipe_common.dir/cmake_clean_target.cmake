file(REMOVE_RECURSE
  "libavgpipe_common.a"
)
