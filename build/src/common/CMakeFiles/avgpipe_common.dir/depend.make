# Empty dependencies file for avgpipe_common.
# This may be replaced when dependencies are built.
