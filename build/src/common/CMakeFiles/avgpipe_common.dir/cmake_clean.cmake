file(REMOVE_RECURSE
  "CMakeFiles/avgpipe_common.dir/log.cpp.o"
  "CMakeFiles/avgpipe_common.dir/log.cpp.o.d"
  "CMakeFiles/avgpipe_common.dir/stats.cpp.o"
  "CMakeFiles/avgpipe_common.dir/stats.cpp.o.d"
  "CMakeFiles/avgpipe_common.dir/step_function.cpp.o"
  "CMakeFiles/avgpipe_common.dir/step_function.cpp.o.d"
  "CMakeFiles/avgpipe_common.dir/table.cpp.o"
  "CMakeFiles/avgpipe_common.dir/table.cpp.o.d"
  "CMakeFiles/avgpipe_common.dir/thread_pool.cpp.o"
  "CMakeFiles/avgpipe_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/avgpipe_common.dir/units.cpp.o"
  "CMakeFiles/avgpipe_common.dir/units.cpp.o.d"
  "libavgpipe_common.a"
  "libavgpipe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
