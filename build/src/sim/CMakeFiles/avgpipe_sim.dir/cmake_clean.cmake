file(REMOVE_RECURSE
  "CMakeFiles/avgpipe_sim.dir/resources.cpp.o"
  "CMakeFiles/avgpipe_sim.dir/resources.cpp.o.d"
  "CMakeFiles/avgpipe_sim.dir/simulator.cpp.o"
  "CMakeFiles/avgpipe_sim.dir/simulator.cpp.o.d"
  "libavgpipe_sim.a"
  "libavgpipe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
