file(REMOVE_RECURSE
  "libavgpipe_sim.a"
)
