# Empty dependencies file for avgpipe_sim.
# This may be replaced when dependencies are built.
