# Empty dependencies file for avgpipe_schedule.
# This may be replaced when dependencies are built.
