# Empty compiler generated dependencies file for avgpipe_schedule.
# This may be replaced when dependencies are built.
