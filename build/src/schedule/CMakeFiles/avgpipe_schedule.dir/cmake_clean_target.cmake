file(REMOVE_RECURSE
  "libavgpipe_schedule.a"
)
