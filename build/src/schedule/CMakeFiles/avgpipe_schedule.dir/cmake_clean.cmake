file(REMOVE_RECURSE
  "CMakeFiles/avgpipe_schedule.dir/schedule.cpp.o"
  "CMakeFiles/avgpipe_schedule.dir/schedule.cpp.o.d"
  "libavgpipe_schedule.a"
  "libavgpipe_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
