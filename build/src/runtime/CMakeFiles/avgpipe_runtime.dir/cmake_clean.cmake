file(REMOVE_RECURSE
  "CMakeFiles/avgpipe_runtime.dir/pipeline_runtime.cpp.o"
  "CMakeFiles/avgpipe_runtime.dir/pipeline_runtime.cpp.o.d"
  "CMakeFiles/avgpipe_runtime.dir/semantics.cpp.o"
  "CMakeFiles/avgpipe_runtime.dir/semantics.cpp.o.d"
  "libavgpipe_runtime.a"
  "libavgpipe_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
