file(REMOVE_RECURSE
  "libavgpipe_runtime.a"
)
