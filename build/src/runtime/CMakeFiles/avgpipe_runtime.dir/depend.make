# Empty dependencies file for avgpipe_runtime.
# This may be replaced when dependencies are built.
