file(REMOVE_RECURSE
  "libavgpipe_tensor.a"
)
