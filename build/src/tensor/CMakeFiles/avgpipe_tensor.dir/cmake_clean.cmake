file(REMOVE_RECURSE
  "CMakeFiles/avgpipe_tensor.dir/autograd.cpp.o"
  "CMakeFiles/avgpipe_tensor.dir/autograd.cpp.o.d"
  "CMakeFiles/avgpipe_tensor.dir/ops.cpp.o"
  "CMakeFiles/avgpipe_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/avgpipe_tensor.dir/tensor.cpp.o"
  "CMakeFiles/avgpipe_tensor.dir/tensor.cpp.o.d"
  "libavgpipe_tensor.a"
  "libavgpipe_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
