# Empty compiler generated dependencies file for avgpipe_tensor.
# This may be replaced when dependencies are built.
