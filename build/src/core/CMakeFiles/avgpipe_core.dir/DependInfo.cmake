
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/avgpipe.cpp" "src/core/CMakeFiles/avgpipe_core.dir/avgpipe.cpp.o" "gcc" "src/core/CMakeFiles/avgpipe_core.dir/avgpipe.cpp.o.d"
  "/root/repo/src/core/elastic.cpp" "src/core/CMakeFiles/avgpipe_core.dir/elastic.cpp.o" "gcc" "src/core/CMakeFiles/avgpipe_core.dir/elastic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/avgpipe_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/avgpipe_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/avgpipe_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/avgpipe_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/avgpipe_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/avgpipe_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/avgpipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
