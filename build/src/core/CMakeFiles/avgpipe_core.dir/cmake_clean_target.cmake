file(REMOVE_RECURSE
  "libavgpipe_core.a"
)
