file(REMOVE_RECURSE
  "CMakeFiles/avgpipe_core.dir/avgpipe.cpp.o"
  "CMakeFiles/avgpipe_core.dir/avgpipe.cpp.o.d"
  "CMakeFiles/avgpipe_core.dir/elastic.cpp.o"
  "CMakeFiles/avgpipe_core.dir/elastic.cpp.o.d"
  "libavgpipe_core.a"
  "libavgpipe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
