# Empty compiler generated dependencies file for avgpipe_core.
# This may be replaced when dependencies are built.
