file(REMOVE_RECURSE
  "CMakeFiles/avgpipe_optim.dir/optimizer.cpp.o"
  "CMakeFiles/avgpipe_optim.dir/optimizer.cpp.o.d"
  "libavgpipe_optim.a"
  "libavgpipe_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
