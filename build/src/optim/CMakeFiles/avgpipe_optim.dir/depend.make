# Empty dependencies file for avgpipe_optim.
# This may be replaced when dependencies are built.
