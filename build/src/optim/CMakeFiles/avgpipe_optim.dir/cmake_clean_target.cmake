file(REMOVE_RECURSE
  "libavgpipe_optim.a"
)
