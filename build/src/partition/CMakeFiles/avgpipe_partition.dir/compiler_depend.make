# Empty compiler generated dependencies file for avgpipe_partition.
# This may be replaced when dependencies are built.
