file(REMOVE_RECURSE
  "CMakeFiles/avgpipe_partition.dir/partitioner.cpp.o"
  "CMakeFiles/avgpipe_partition.dir/partitioner.cpp.o.d"
  "libavgpipe_partition.a"
  "libavgpipe_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
