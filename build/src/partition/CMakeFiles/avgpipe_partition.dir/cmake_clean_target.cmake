file(REMOVE_RECURSE
  "libavgpipe_partition.a"
)
