file(REMOVE_RECURSE
  "libavgpipe_workloads.a"
)
