file(REMOVE_RECURSE
  "CMakeFiles/avgpipe_workloads.dir/cluster.cpp.o"
  "CMakeFiles/avgpipe_workloads.dir/cluster.cpp.o.d"
  "CMakeFiles/avgpipe_workloads.dir/profile.cpp.o"
  "CMakeFiles/avgpipe_workloads.dir/profile.cpp.o.d"
  "libavgpipe_workloads.a"
  "libavgpipe_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
