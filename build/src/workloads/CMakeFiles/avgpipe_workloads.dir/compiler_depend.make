# Empty compiler generated dependencies file for avgpipe_workloads.
# This may be replaced when dependencies are built.
