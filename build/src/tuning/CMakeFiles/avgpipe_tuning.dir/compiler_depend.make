# Empty compiler generated dependencies file for avgpipe_tuning.
# This may be replaced when dependencies are built.
