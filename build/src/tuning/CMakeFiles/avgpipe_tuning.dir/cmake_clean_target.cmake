file(REMOVE_RECURSE
  "libavgpipe_tuning.a"
)
