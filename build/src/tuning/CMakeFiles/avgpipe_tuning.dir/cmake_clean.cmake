file(REMOVE_RECURSE
  "CMakeFiles/avgpipe_tuning.dir/predictor.cpp.o"
  "CMakeFiles/avgpipe_tuning.dir/predictor.cpp.o.d"
  "CMakeFiles/avgpipe_tuning.dir/tuner.cpp.o"
  "CMakeFiles/avgpipe_tuning.dir/tuner.cpp.o.d"
  "libavgpipe_tuning.a"
  "libavgpipe_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
