# Empty dependencies file for avgpipe_nn.
# This may be replaced when dependencies are built.
