file(REMOVE_RECURSE
  "libavgpipe_nn.a"
)
