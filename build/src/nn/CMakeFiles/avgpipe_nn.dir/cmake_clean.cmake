file(REMOVE_RECURSE
  "CMakeFiles/avgpipe_nn.dir/attention.cpp.o"
  "CMakeFiles/avgpipe_nn.dir/attention.cpp.o.d"
  "CMakeFiles/avgpipe_nn.dir/layers.cpp.o"
  "CMakeFiles/avgpipe_nn.dir/layers.cpp.o.d"
  "CMakeFiles/avgpipe_nn.dir/lstm.cpp.o"
  "CMakeFiles/avgpipe_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/avgpipe_nn.dir/models.cpp.o"
  "CMakeFiles/avgpipe_nn.dir/models.cpp.o.d"
  "CMakeFiles/avgpipe_nn.dir/sequential.cpp.o"
  "CMakeFiles/avgpipe_nn.dir/sequential.cpp.o.d"
  "libavgpipe_nn.a"
  "libavgpipe_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
