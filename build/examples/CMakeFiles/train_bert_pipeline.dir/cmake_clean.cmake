file(REMOVE_RECURSE
  "CMakeFiles/train_bert_pipeline.dir/train_bert_pipeline.cpp.o"
  "CMakeFiles/train_bert_pipeline.dir/train_bert_pipeline.cpp.o.d"
  "train_bert_pipeline"
  "train_bert_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_bert_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
