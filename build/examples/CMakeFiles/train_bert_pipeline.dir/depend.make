# Empty dependencies file for train_bert_pipeline.
# This may be replaced when dependencies are built.
