# Empty dependencies file for tune_parallelism.
# This may be replaced when dependencies are built.
