# Empty dependencies file for avgpipe_bench_common.
# This may be replaced when dependencies are built.
