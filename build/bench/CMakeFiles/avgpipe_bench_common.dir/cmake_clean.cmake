file(REMOVE_RECURSE
  "../lib/libavgpipe_bench_common.a"
  "../lib/libavgpipe_bench_common.pdb"
  "CMakeFiles/avgpipe_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/avgpipe_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avgpipe_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
