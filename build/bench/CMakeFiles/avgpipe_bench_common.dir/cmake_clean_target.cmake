file(REMOVE_RECURSE
  "../lib/libavgpipe_bench_common.a"
)
