# Empty dependencies file for fig19_tuning_result.
# This may be replaced when dependencies are built.
