file(REMOVE_RECURSE
  "CMakeFiles/fig19_tuning_result.dir/fig19_tuning_result.cpp.o"
  "CMakeFiles/fig19_tuning_result.dir/fig19_tuning_result.cpp.o.d"
  "fig19_tuning_result"
  "fig19_tuning_result.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_tuning_result.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
