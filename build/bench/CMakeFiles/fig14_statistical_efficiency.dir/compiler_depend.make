# Empty compiler generated dependencies file for fig14_statistical_efficiency.
# This may be replaced when dependencies are built.
