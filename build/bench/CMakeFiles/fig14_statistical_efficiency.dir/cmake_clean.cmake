file(REMOVE_RECURSE
  "CMakeFiles/fig14_statistical_efficiency.dir/fig14_statistical_efficiency.cpp.o"
  "CMakeFiles/fig14_statistical_efficiency.dir/fig14_statistical_efficiency.cpp.o.d"
  "fig14_statistical_efficiency"
  "fig14_statistical_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_statistical_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
