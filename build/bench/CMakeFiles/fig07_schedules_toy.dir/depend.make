# Empty dependencies file for fig07_schedules_toy.
# This may be replaced when dependencies are built.
