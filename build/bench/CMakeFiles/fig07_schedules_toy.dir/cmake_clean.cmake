file(REMOVE_RECURSE
  "CMakeFiles/fig07_schedules_toy.dir/fig07_schedules_toy.cpp.o"
  "CMakeFiles/fig07_schedules_toy.dir/fig07_schedules_toy.cpp.o.d"
  "fig07_schedules_toy"
  "fig07_schedules_toy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_schedules_toy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
