# Empty dependencies file for fig17_schedule_ablation.
# This may be replaced when dependencies are built.
