file(REMOVE_RECURSE
  "CMakeFiles/fig18_tuning_cost.dir/fig18_tuning_cost.cpp.o"
  "CMakeFiles/fig18_tuning_cost.dir/fig18_tuning_cost.cpp.o.d"
  "fig18_tuning_cost"
  "fig18_tuning_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_tuning_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
