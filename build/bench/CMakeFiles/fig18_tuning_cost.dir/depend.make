# Empty dependencies file for fig18_tuning_cost.
# This may be replaced when dependencies are built.
