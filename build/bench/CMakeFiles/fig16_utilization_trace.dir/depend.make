# Empty dependencies file for fig16_utilization_trace.
# This may be replaced when dependencies are built.
