file(REMOVE_RECURSE
  "CMakeFiles/fig16_utilization_trace.dir/fig16_utilization_trace.cpp.o"
  "CMakeFiles/fig16_utilization_trace.dir/fig16_utilization_trace.cpp.o.d"
  "fig16_utilization_trace"
  "fig16_utilization_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_utilization_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
