# Empty compiler generated dependencies file for ablation_elastic.
# This may be replaced when dependencies are built.
