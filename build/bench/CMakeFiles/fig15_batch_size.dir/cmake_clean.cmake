file(REMOVE_RECURSE
  "CMakeFiles/fig15_batch_size.dir/fig15_batch_size.cpp.o"
  "CMakeFiles/fig15_batch_size.dir/fig15_batch_size.cpp.o.d"
  "fig15_batch_size"
  "fig15_batch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
