
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/avgpipe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/avgpipe_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/avgpipe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/avgpipe_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/avgpipe_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/avgpipe_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/avgpipe_data.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/avgpipe_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/avgpipe_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/avgpipe_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/avgpipe_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/avgpipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
