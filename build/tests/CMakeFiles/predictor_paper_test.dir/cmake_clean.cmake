file(REMOVE_RECURSE
  "CMakeFiles/predictor_paper_test.dir/predictor_paper_test.cpp.o"
  "CMakeFiles/predictor_paper_test.dir/predictor_paper_test.cpp.o.d"
  "predictor_paper_test"
  "predictor_paper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_paper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
