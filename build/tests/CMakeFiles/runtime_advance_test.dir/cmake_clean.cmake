file(REMOVE_RECURSE
  "CMakeFiles/runtime_advance_test.dir/runtime_advance_test.cpp.o"
  "CMakeFiles/runtime_advance_test.dir/runtime_advance_test.cpp.o.d"
  "runtime_advance_test"
  "runtime_advance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_advance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
