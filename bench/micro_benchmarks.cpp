/// \file micro_benchmarks.cpp
/// google-benchmark microbenchmarks for the substrates: tensor kernels,
/// autograd round trips, channels, the discrete-event engine and the
/// processor-sharing compute resource. These quantify the cost of the
/// building blocks the reproduction rests on.
///
/// Besides the google-benchmark suite, a hand-timed kernel suite can emit a
/// machine-readable perf baseline:
///
///   micro_benchmarks --json=BENCH_kernels.json [--kernels-only]
///
/// The JSON records GFLOP/s and ns/op for the blocked GEMM vs the reference
/// loop, fused vs unfused elastic/SGD kernels, and heap allocations per
/// steady-state training step from the arena counters. The kernel suite also
/// re-checks blocked-vs-reference parity and exits non-zero on a mismatch,
/// so CI's perf-smoke job doubles as a correctness gate.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/queue.hpp"
#include "common/thread_pool.hpp"
#include "core/elastic.hpp"
#include "nn/models.hpp"
#include "optim/optimizer.hpp"
#include "sim/resources.hpp"
#include "sim/simulator.hpp"
#include "tensor/arena.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/quantize.hpp"

namespace {

using namespace avgpipe;
using tensor::Scalar;
using tensor::Tensor;
using tensor::Variable;

void BM_TensorMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Variable a(Tensor::randn({n, n}, rng), false);
  Variable b(Tensor::randn({n, n}, rng), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b).value().data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulForwardBackward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Variable a(Tensor::randn({n, n}, rng), true);
  Variable b(Tensor::randn({n, n}, rng), true);
  for (auto _ : state) {
    a.zero_grad();
    b.zero_grad();
    tensor::sum_all(tensor::matmul(a, b)).backward();
    benchmark::DoNotOptimize(a.grad().data().data());
  }
}
BENCHMARK(BM_MatmulForwardBackward)->Arg(32)->Arg(64);

void BM_LstmForward(benchmark::State& state) {
  Rng rng(1);
  nn::LSTM lstm(32, 32, rng);
  lstm.set_training(false);
  Variable x(Tensor::randn({8, 16, 32}, rng), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.forward(x).value().data().data());
  }
}
BENCHMARK(BM_LstmForward);

void BM_TransformerLayerForward(benchmark::State& state) {
  Rng rng(1);
  nn::TransformerEncoderLayer layer(32, 4, 64, rng, 0.0);
  layer.set_training(false);
  Variable x(Tensor::randn({4, 16, 32}, rng), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.forward(x).value().data().data());
  }
}
BENCHMARK(BM_TransformerLayerForward);

void BM_ChannelPingPong(benchmark::State& state) {
  Channel<int> ch(64);
  for (auto _ : state) {
    ch.send(1);
    benchmark::DoNotOptimize(ch.recv());
  }
}
BENCHMARK(BM_ChannelPingPong);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(static_cast<Seconds>(i), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_ProcessorSharingReconfig(benchmark::State& state) {
  // Stress the rate-reconfiguration path: many overlapping ops.
  for (auto _ : state) {
    sim::Engine engine;
    sim::ComputeResource gpu(engine, 1e9);
    for (int i = 0; i < 100; ++i) {
      engine.schedule_at(static_cast<Seconds>(i) * 0.001, [&gpu] {
        gpu.submit(1e6, 0.3, [] {});
      });
    }
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_ProcessorSharingReconfig);

void BM_SimulateGnmtBatch(benchmark::State& state) {
  const auto w = workloads::gnmt_profile();
  const auto cluster = workloads::v100_cluster(6);
  const auto part = partition::pipedream_partition(w, cluster, 6);
  sim::SystemConfig sys;
  sys.kind = schedule::Kind::kAdvanceForward;
  sys.micro_batches = 32;
  sys.num_pipelines = 2;
  sys.elastic_averaging = true;
  for (auto _ : state) {
    auto job = sim::build_job(w, cluster, part, sys, 128, 2);
    benchmark::DoNotOptimize(sim::simulate(job).makespan);
  }
}
BENCHMARK(BM_SimulateGnmtBatch);

// -- hand-timed kernel suite (--json) -------------------------------------------

using Clock = std::chrono::steady_clock;

/// Median-of-reps wall time for one call of `fn`, with one warm-up call.
template <typename Fn>
double time_ns(Fn&& fn, int reps) {
  fn();  // warm up (populates arena caches, spawns pool threads)
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

std::vector<Scalar> bench_vec(std::size_t n, Rng& rng) {
  std::vector<Scalar> v(n);
  for (auto& x : v) x = rng.normal(0.0, 1.0);
  return v;
}

struct GemmResult {
  std::size_t m, n, k;
  double ref_ns, blocked_ns, ref_gflops, blocked_gflops, speedup, max_rel_err;
};

GemmResult bench_gemm(std::size_t m, std::size_t n, std::size_t k) {
  Rng rng(0xBE7C);
  const auto a = bench_vec(m * k, rng);
  const auto b = bench_vec(k * n, rng);
  std::vector<Scalar> c_ref(m * n, 0.0), c_blk(m * n, 0.0);
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  const int reps = std::max(3, static_cast<int>(2e8 / flops));

  GemmResult r{m, n, k, 0, 0, 0, 0, 0, 0};
  r.ref_ns = time_ns(
      [&] {
        tensor::gemm_reference(a.data(), b.data(), c_ref.data(), m, n, k,
                               false, false, false);
      },
      reps);
  r.blocked_ns = time_ns(
      [&] {
        tensor::gemm_blocked(a.data(), b.data(), c_blk.data(), m, n, k, false,
                             false, false);
      },
      reps);
  r.ref_gflops = flops / r.ref_ns;
  r.blocked_gflops = flops / r.blocked_ns;
  r.speedup = r.ref_ns / r.blocked_ns;
  for (std::size_t i = 0; i < m * n; ++i) {
    const double denom = std::max(1.0, std::abs(c_ref[i]));
    r.max_rel_err = std::max(r.max_rel_err,
                             std::abs(c_blk[i] - c_ref[i]) / denom);
  }
  return r;
}

struct FusedResult {
  std::string name;
  double fused_ns, unfused_ns, speedup;
};

FusedResult bench_fused_elastic() {
  const std::size_t n = 1 << 16;
  Rng rng(5);
  auto make = [&] {
    Tensor t({n});
    for (auto& v : t.data()) v = rng.normal(0.0, 1.0);
    return t;
  };
  std::vector<Variable> params{Variable(make(), true)};
  core::ParamSet reference;
  reference.push_back(make());
  const double alpha = 0.25;

  FusedResult r{"elastic_pull_push", 0, 0, 0};
  r.fused_ns = time_ns(
      [&] {
        benchmark::DoNotOptimize(
            core::elastic_pull_push(params, reference, alpha));
      },
      50);
  r.unfused_ns = time_ns(
      [&] {
        core::elastic_pull(params, reference, alpha);
        benchmark::DoNotOptimize(core::difference(params, reference));
      },
      50);
  r.speedup = r.unfused_ns / r.fused_ns;
  return r;
}

FusedResult bench_fused_sgd() {
  const std::size_t n = 1 << 16;
  Rng rng(6);
  Tensor w({n}), g({n});
  for (auto& v : w.data()) v = rng.normal(0.0, 1.0);
  for (auto& v : g.data()) v = rng.normal(0.0, 1.0);
  Variable p(std::move(w), true);
  p.mutable_grad().copy_from(g);
  optim::Sgd sgd({p}, 1e-6, 0.9, 1e-4);

  Tensor velocity(p.value().shape());
  FusedResult r{"sgd_momentum_step", 0, 0, 0};
  r.fused_ns = time_ns([&] { sgd.step(); }, 50);
  r.unfused_ns = time_ns(
      [&] {
        Tensor gc = p.grad().clone();
        gc.axpy_(1e-4, p.value());
        velocity.scale_(0.9);
        velocity.axpy_(1.0, gc);
        p.value().axpy_(-1e-6, velocity);
      },
      50);
  r.speedup = r.unfused_ns / r.fused_ns;
  return r;
}

struct CodecResult {
  std::string name;        ///< "int8" / "fp16"
  double quant_gbps;       ///< dispatched quantize, input GB/s
  double dequant_gbps;     ///< dispatched dequantize, output GB/s
  double quant_ref_gbps;   ///< reference-oracle quantize
  double dequant_ref_gbps; ///< reference-oracle dequantize
  double wire_ratio;       ///< raw bytes / wire bytes
  double max_err;          ///< round-trip error (codec-specific norm)
  bool parity_ok;          ///< dispatched kernels bit-identical to oracles
};

/// Quantize/dequantize GB/s plus the bit-parity and error gates the CI
/// perf-smoke job enforces. Errors are measured in the codec's own norm:
/// per-block-max-relative for int8, half-ulp-relative for fp16.
CodecResult bench_codec(tensor::Codec codec) {
  const std::size_t n = (1 << 16) + 37;  // odd: exercises every tail path
  Rng rng(0xC0DEC);
  const auto src = bench_vec(n, rng);
  const double raw_bytes = static_cast<double>(n * sizeof(Scalar));
  const int reps = 50;

  CodecResult r{tensor::to_string(codec), 0, 0, 0, 0, 0, 0, true};
  r.wire_ratio =
      raw_bytes / static_cast<double>(tensor::codec_wire_bytes(codec, n));
  std::vector<Scalar> dst(n), dst_ref(n);

  if (codec == tensor::Codec::kInt8) {
    const std::size_t blocks = tensor::int8_num_blocks(n);
    std::vector<std::int8_t> q(n), q_ref(n);
    std::vector<float> s(blocks), s_ref(blocks);
    r.quant_gbps = raw_bytes / time_ns(
        [&] { tensor::quantize_int8(src.data(), n, q.data(), s.data()); },
        reps);
    r.quant_ref_gbps = raw_bytes / time_ns(
        [&] {
          tensor::quantize_int8_reference(src.data(), n, q_ref.data(),
                                          s_ref.data());
        },
        reps);
    r.dequant_gbps = raw_bytes / time_ns(
        [&] { tensor::dequantize_int8(q.data(), s.data(), n, dst.data()); },
        reps);
    r.dequant_ref_gbps = raw_bytes / time_ns(
        [&] {
          tensor::dequantize_int8_reference(q_ref.data(), s_ref.data(), n,
                                            dst_ref.data());
        },
        reps);
    r.parity_ok = q == q_ref && s == s_ref && dst == dst_ref;
    for (std::size_t b = 0; b * tensor::kQuantBlock < n; ++b) {
      const std::size_t lo = b * tensor::kQuantBlock;
      const std::size_t hi = std::min(n, lo + tensor::kQuantBlock);
      double block_max = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        block_max = std::max(block_max, std::abs(src[i]));
      }
      if (block_max == 0.0) continue;
      for (std::size_t i = lo; i < hi; ++i) {
        r.max_err =
            std::max(r.max_err, std::abs(src[i] - dst[i]) / block_max);
      }
    }
  } else {
    std::vector<std::uint16_t> h(n), h_ref(n);
    r.quant_gbps = raw_bytes /
        time_ns([&] { tensor::quantize_fp16(src.data(), n, h.data()); }, reps);
    r.quant_ref_gbps = raw_bytes / time_ns(
        [&] { tensor::quantize_fp16_reference(src.data(), n, h_ref.data()); },
        reps);
    r.dequant_gbps = raw_bytes /
        time_ns([&] { tensor::dequantize_fp16(h.data(), n, dst.data()); },
                reps);
    r.dequant_ref_gbps = raw_bytes / time_ns(
        [&] { tensor::dequantize_fp16_reference(h_ref.data(), n,
                                                dst_ref.data()); },
        reps);
    r.parity_ok = h == h_ref && dst == dst_ref;
    for (std::size_t i = 0; i < n; ++i) {
      const double denom = std::max(std::abs(src[i]), 0x1.0p-14);
      r.max_err = std::max(r.max_err, std::abs(src[i] - dst[i]) / denom);
    }
  }
  return r;
}

/// Per-codec round-trip error ceiling for the bench gate (see
/// tests/kernel_test.cpp for the derivations).
double codec_err_bound(tensor::Codec codec) {
  return codec == tensor::Codec::kInt8 ? 0.5 / 127.0 + 1e-6 : 0x1.0p-10;
}

struct ArenaResult {
  double acquires_per_step, heap_allocs_per_step;
};

ArenaResult bench_arena_steady_state() {
  // One optimizer + persistent parameters, fresh activations per step: the
  // shape every training loop in the repo has.
  Rng rng(7);
  Variable w(Tensor::randn({64, 32}, rng), true);
  optim::Sgd sgd({w}, 0.01, 0.9);
  auto step = [&] {
    Rng local(9);
    Variable x(Tensor::randn({16, 64}, local), false);
    w.zero_grad();
    tensor::mean_all(tensor::relu(tensor::matmul(x, w))).backward();
    sgd.step();
  };
  for (int i = 0; i < 3; ++i) step();  // warm-up fills the free lists
  tensor::arena::reset_stats();
  const int steps = 100;
  for (int i = 0; i < steps; ++i) step();
  const auto s = tensor::arena::stats();
  return {static_cast<double>(s.acquires) / steps,
          static_cast<double>(s.heap_allocs) / steps};
}

int run_kernel_suite(const std::string& json_path) {
  const std::vector<std::array<std::size_t, 3>> shapes = {
      {64, 64, 64}, {128, 128, 128}, {256, 256, 256}, {96, 257, 33}};
  std::vector<GemmResult> gemms;
  bool parity_ok = true;
  for (const auto& [m, n, k] : shapes) {
    gemms.push_back(bench_gemm(m, n, k));
    const auto& g = gemms.back();
    // Tolerance mirrors tests/kernel_test.cpp: FMA reassociation accumulates
    // at most a few ulp per k-term.
    if (g.max_rel_err > 1e-13 * static_cast<double>(k + 1)) {
      parity_ok = false;
      std::fprintf(stderr,
                   "PARITY FAIL gemm %zux%zux%zu: max_rel_err=%.3e\n", m, n,
                   k, g.max_rel_err);
    }
    std::printf(
        "gemm %4zux%-4zux%-4zu ref %8.2f GFLOP/s  blocked %8.2f GFLOP/s  "
        "speedup %5.2fx  max_rel_err %.2e\n",
        m, n, k, g.ref_gflops, g.blocked_gflops, g.speedup, g.max_rel_err);
  }
  const std::vector<FusedResult> fused = {bench_fused_elastic(),
                                          bench_fused_sgd()};
  for (const auto& f : fused) {
    std::printf("%-20s fused %10.0f ns  unfused %10.0f ns  speedup %.2fx\n",
                f.name.c_str(), f.fused_ns, f.unfused_ns, f.speedup);
  }
  std::vector<CodecResult> codecs;
  for (const tensor::Codec codec :
       {tensor::Codec::kInt8, tensor::Codec::kFp16}) {
    codecs.push_back(bench_codec(codec));
    const auto& c = codecs.back();
    if (!c.parity_ok) {
      parity_ok = false;
      std::fprintf(stderr,
                   "PARITY FAIL codec %s: dispatched != reference\n",
                   c.name.c_str());
    }
    if (c.max_err > codec_err_bound(codec)) {
      parity_ok = false;
      std::fprintf(stderr, "ERROR BOUND FAIL codec %s: max_err=%.3e > %.3e\n",
                   c.name.c_str(), c.max_err, codec_err_bound(codec));
    }
    std::printf(
        "codec %-5s quant %6.2f GB/s (ref %6.2f)  dequant %6.2f GB/s "
        "(ref %6.2f)  wire %.2fx  max_err %.2e\n",
        c.name.c_str(), c.quant_gbps, c.quant_ref_gbps, c.dequant_gbps,
        c.dequant_ref_gbps, c.wire_ratio, c.max_err);
  }
  const ArenaResult arena = bench_arena_steady_state();
  std::printf("arena steady-state: %.1f acquires/step, %.2f heap allocs/step\n",
              arena.acquires_per_step, arena.heap_allocs_per_step);

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  out << "{\n  \"schema\": \"avgpipe-kernel-bench-v1\",\n";
  out << "  \"num_threads\": " << configured_num_threads() << ",\n";
  out << "  \"gemm\": [\n";
  for (std::size_t i = 0; i < gemms.size(); ++i) {
    const auto& g = gemms[i];
    out << "    {\"m\": " << g.m << ", \"n\": " << g.n << ", \"k\": " << g.k
        << ", \"ref_ns\": " << g.ref_ns << ", \"blocked_ns\": " << g.blocked_ns
        << ", \"ref_gflops\": " << g.ref_gflops
        << ", \"blocked_gflops\": " << g.blocked_gflops
        << ", \"speedup\": " << g.speedup
        << ", \"max_rel_err\": " << g.max_rel_err << "}"
        << (i + 1 < gemms.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"fused\": [\n";
  for (std::size_t i = 0; i < fused.size(); ++i) {
    const auto& f = fused[i];
    out << "    {\"name\": \"" << f.name << "\", \"fused_ns\": " << f.fused_ns
        << ", \"unfused_ns\": " << f.unfused_ns
        << ", \"speedup\": " << f.speedup << "}"
        << (i + 1 < fused.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"codec\": [\n";
  for (std::size_t i = 0; i < codecs.size(); ++i) {
    const auto& c = codecs[i];
    out << "    {\"name\": \"" << c.name
        << "\", \"quant_gbps\": " << c.quant_gbps
        << ", \"dequant_gbps\": " << c.dequant_gbps
        << ", \"quant_ref_gbps\": " << c.quant_ref_gbps
        << ", \"dequant_ref_gbps\": " << c.dequant_ref_gbps
        << ", \"wire_ratio\": " << c.wire_ratio
        << ", \"max_err\": " << c.max_err
        << ", \"parity_ok\": " << (c.parity_ok ? "true" : "false") << "}"
        << (i + 1 < codecs.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"arena\": {\"acquires_per_step\": "
      << arena.acquires_per_step
      << ", \"heap_allocs_per_step\": " << arena.heap_allocs_per_step
      << "},\n";
  out << "  \"parity_ok\": " << (parity_ok ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return parity_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flags before handing argv to google-benchmark.
  std::string json_path;
  bool kernels_only = false;
  int out_argc = 0;
  std::vector<char*> out_argv;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--kernels-only") == 0) {
      kernels_only = true;
    } else {
      out_argv.push_back(argv[i]);
      ++out_argc;
    }
  }
  out_argv.push_back(nullptr);

  int rc = 0;
  if (!json_path.empty()) rc = run_kernel_suite(json_path);
  if (!kernels_only) {
    benchmark::Initialize(&out_argc, out_argv.data());
    if (benchmark::ReportUnrecognizedArguments(out_argc, out_argv.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return rc;
}
