/// \file micro_benchmarks.cpp
/// google-benchmark microbenchmarks for the substrates: tensor kernels,
/// autograd round trips, channels, the discrete-event engine and the
/// processor-sharing compute resource. These quantify the cost of the
/// building blocks the reproduction rests on.

#include <benchmark/benchmark.h>

#include "common/queue.hpp"
#include "nn/models.hpp"
#include "sim/resources.hpp"
#include "sim/simulator.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace avgpipe;
using tensor::Tensor;
using tensor::Variable;

void BM_TensorMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Variable a(Tensor::randn({n, n}, rng), false);
  Variable b(Tensor::randn({n, n}, rng), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b).value().data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatmulForwardBackward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Variable a(Tensor::randn({n, n}, rng), true);
  Variable b(Tensor::randn({n, n}, rng), true);
  for (auto _ : state) {
    a.zero_grad();
    b.zero_grad();
    tensor::sum_all(tensor::matmul(a, b)).backward();
    benchmark::DoNotOptimize(a.grad().data().data());
  }
}
BENCHMARK(BM_MatmulForwardBackward)->Arg(32)->Arg(64);

void BM_LstmForward(benchmark::State& state) {
  Rng rng(1);
  nn::LSTM lstm(32, 32, rng);
  lstm.set_training(false);
  Variable x(Tensor::randn({8, 16, 32}, rng), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.forward(x).value().data().data());
  }
}
BENCHMARK(BM_LstmForward);

void BM_TransformerLayerForward(benchmark::State& state) {
  Rng rng(1);
  nn::TransformerEncoderLayer layer(32, 4, 64, rng, 0.0);
  layer.set_training(false);
  Variable x(Tensor::randn({4, 16, 32}, rng), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.forward(x).value().data().data());
  }
}
BENCHMARK(BM_TransformerLayerForward);

void BM_ChannelPingPong(benchmark::State& state) {
  Channel<int> ch(64);
  for (auto _ : state) {
    ch.send(1);
    benchmark::DoNotOptimize(ch.recv());
  }
}
BENCHMARK(BM_ChannelPingPong);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(static_cast<Seconds>(i), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_ProcessorSharingReconfig(benchmark::State& state) {
  // Stress the rate-reconfiguration path: many overlapping ops.
  for (auto _ : state) {
    sim::Engine engine;
    sim::ComputeResource gpu(engine, 1e9);
    for (int i = 0; i < 100; ++i) {
      engine.schedule_at(static_cast<Seconds>(i) * 0.001, [&gpu] {
        gpu.submit(1e6, 0.3, [] {});
      });
    }
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_ProcessorSharingReconfig);

void BM_SimulateGnmtBatch(benchmark::State& state) {
  const auto w = workloads::gnmt_profile();
  const auto cluster = workloads::v100_cluster(6);
  const auto part = partition::pipedream_partition(w, cluster, 6);
  sim::SystemConfig sys;
  sys.kind = schedule::Kind::kAdvanceForward;
  sys.micro_batches = 32;
  sys.num_pipelines = 2;
  sys.elastic_averaging = true;
  for (auto _ : state) {
    auto job = sim::build_job(w, cluster, part, sys, 128, 2);
    benchmark::DoNotOptimize(sim::simulate(job).makespan);
  }
}
BENCHMARK(BM_SimulateGnmtBatch);

}  // namespace

BENCHMARK_MAIN();
