#pragma once

/// \file bench_common.hpp
/// Shared harness for the figure-reproduction benches.
///
/// Maps the paper's evaluated systems onto simulator configurations:
///
///   PyTorch        -> kDataParallel
///   GPipe          -> kAfab            (flushed, all-forward-all-backward)
///   PipeDream      -> kPipeDream      (flush-free, K..1 weight versions)
///   PipeDream-2BW  -> kPipeDream2BW   (flush-free, 2 weight versions)
///   Dapple         -> kOneFOneB       (flushed 1F1B, 1 version)
///   AvgPipe(X)     -> kAdvanceForward + N elastic pipelines, parallelism
///                     degrees picked by the profiling tuner under the
///                     memory footprint of baseline X (the paper's §7.1
///                     "same memory constraint" methodology)
///
/// Baselines get their best micro-batch count from a sweep (strong
/// baselines), mirroring that the paper tunes each system independently.

#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fault/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "trace/analysis.hpp"
#include "tuning/tuner.hpp"

namespace avgpipe::bench {

struct SystemResult {
  std::string name;
  sim::SimJob job;
  sim::SimResult sim;
  /// Metrics derived from the run's execution trace (run_system attaches a
  /// tracer to every simulation). The figure benches read utilization and
  /// overlap from here rather than from private simulator state.
  trace::TraceAnalysis analysis;
  Seconds epoch_seconds = 0;
  Bytes peak_memory = 0;  ///< max over GPUs
  bool oom = false;
  std::size_t micro_batches = 1;
  std::size_t pipelines = 1;
};

/// Simulate one system configuration on a paper workload. `faults` (optional,
/// non-owning) injects a fault scenario into the simulation — see
/// faults_from_args and DESIGN.md "Fault model & recovery".
SystemResult run_system(const workloads::WorkloadProfile& w,
                        const std::string& name, schedule::Kind kind,
                        std::size_t micro_batches, std::size_t pipelines,
                        bool elastic, std::size_t advance_num,
                        Bytes memory_limit, std::size_t num_batches = 4,
                        const fault::FaultPlan* faults = nullptr);

/// Best micro-batch count (powers of two dividing the batch) for a baseline
/// schedule with one pipeline.
std::size_t best_micro_batches(const workloads::WorkloadProfile& w,
                               schedule::Kind kind);

/// The paper's five baselines, each at its best micro-batch count.
std::vector<SystemResult> run_baselines(const workloads::WorkloadProfile& w);

/// AvgPipe tuned under `memory_limit` via the profiling tuner, executed with
/// the adaptive advance-forward schedule and elastic averaging.
SystemResult run_avgpipe(const workloads::WorkloadProfile& w,
                         const std::string& name, Bytes memory_limit);

/// Relative epochs-to-target used to convert epoch time into total training
/// time for Figure 11. Measured by bench/fig14 at reduced scale (see
/// EXPERIMENTS.md): synchronous systems and AvgPipe match; PipeDream's
/// multi-version training needs noticeably more epochs.
double relative_epochs(const std::string& system_name);

/// One compact line for the per-GPU utilization curve (ASCII sparkline of
/// φ(t) sampled into `bins` buckets).
std::string sparkline(const StepFunction& phi, Seconds t_begin, Seconds t_end,
                      std::size_t bins);

/// Value of a `--trace <path>` (or `--trace=<path>`) flag, "" when absent.
std::string trace_path_from_args(int argc, char** argv);

/// Fault plan from a `--faults <plan.json>` (or `--faults=<path>`) flag,
/// nullptr when the flag is absent. A malformed plan file is a hard error.
std::unique_ptr<fault::FaultPlan> faults_from_args(int argc, char** argv);

/// When `path` is non-empty, write the run's events as Chrome trace-event
/// JSON (loadable in Perfetto / chrome://tracing) and print where they went.
void maybe_dump_trace(const trace::TraceAnalysis& analysis,
                      const std::string& path);

}  // namespace avgpipe::bench
