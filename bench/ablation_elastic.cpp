/// \file ablation_elastic.cpp
/// Ablations of the elastic-averaging design (real training, paper §3):
///
///  * α sweep: the pull strength. The paper fixes α = 1/N; this shows the
///    sensitivity around that choice (α = 0 lets replicas diverge; α = 1
///    resets them to the reference every iteration).
///  * N sweep: statistical efficiency as parallel pipelines are added.
///
/// Both run real training on the BERT-style pair-classification stand-in.

#include <cstdio>

#include "common/table.hpp"
#include "core/avgpipe.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

using namespace avgpipe;

namespace {

nn::ModelFactory model_factory() {
  return [](std::uint64_t seed) {
    return nn::make_bert_like(32, 16, 2, 32, 2, 2, seed, 0.05);
  };
}

runtime::OptimizerFactory adam(double lr) {
  return [lr](std::vector<tensor::Variable> params) {
    return std::unique_ptr<optim::Optimizer>(
        std::make_unique<optim::Adam>(std::move(params), lr));
  };
}

/// Epochs to reach the accuracy target (0 = never within the cap).
std::size_t epochs_to_target(core::AvgPipeTrainer& trainer,
                             const data::Dataset& ds, double target,
                             std::size_t max_epochs) {
  data::DataLoader loader(ds, 16, 99);
  for (std::size_t epoch = 0; epoch < max_epochs; ++epoch) {
    const std::size_t per_iter = trainer.batches_per_iteration();
    std::size_t i = 0;
    while (i + per_iter <= loader.batches_per_epoch()) {
      std::vector<data::Batch> batches;
      for (std::size_t p = 0; p < per_iter; ++p) {
        batches.push_back(loader.batch(epoch, i++));
      }
      trainer.train_iteration(batches);
    }
    if (runtime::evaluate_accuracy(trainer.eval_model(), loader, 0, 6) >=
        target) {
      return epoch + 1;
    }
  }
  return 0;
}

/// Max parameter distance between the two replicas after training.
double replica_divergence(core::AvgPipeTrainer& trainer) {
  auto a = trainer.replica(0).parameters();
  auto b = trainer.replica(1).parameters();
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, a[i].value().max_abs_diff(b[i].value()));
  }
  return d;
}

}  // namespace

int main() {
  data::SyntheticPairClassification ds(384, 32, 12, 4, 9, 0.7);
  const double target = 0.78;
  const std::size_t cap = 40;

  std::printf("== Elastic-averaging ablations (BERT stand-in, N=2) ==\n\n");
  std::printf("-- alpha sweep (paper default: 1/N = 0.5) --\n");
  Table t1({"alpha", "epochs to target", "replica divergence"});
  for (double alpha : {0.05, 0.1, 0.25, 0.5, 0.75, 0.95}) {
    core::AvgPipeTrainer trainer(model_factory(), adam(3e-3), 2, alpha);
    const std::size_t epochs = epochs_to_target(trainer, ds, target, cap);
    t1.row()
        .cell(alpha, 2)
        .cell(epochs > 0 ? std::to_string(epochs) : std::string("-"))
        .cell(replica_divergence(trainer), 4);
  }
  t1.print();
  std::printf("(weak pulls leave the replicas far apart; strong pulls damp\n"
              " progress — the paper's 1/N sits in the workable middle)\n\n");

  std::printf("-- pipeline-count sweep (alpha = 1/N) --\n");
  Table t2({"N", "epochs to target"});
  for (std::size_t n : {1u, 2u, 3u, 4u}) {
    core::AvgPipeTrainer trainer(model_factory(), adam(3e-3), n);
    const std::size_t epochs = epochs_to_target(trainer, ds, target, cap);
    t2.row()
        .cell_int(static_cast<long long>(n))
        .cell(epochs > 0 ? std::to_string(epochs) : std::string("-"));
  }
  t2.print();
  std::printf("(each added pipeline consumes more data per iteration; the\n"
              " epochs-to-target should grow slowly, not proportionally)\n");
  return 0;
}
