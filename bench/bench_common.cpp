#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "trace/chrome_trace.hpp"

namespace avgpipe::bench {

namespace {

sim::SimJob base_job(const workloads::WorkloadProfile& w) {
  auto cluster = workloads::v100_cluster(w.num_gpus);
  auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
  sim::SystemConfig sys;
  sys.kind = schedule::Kind::kAdvanceForward;
  sys.micro_batches = 1;
  return sim::build_job(w, cluster, part, sys, w.batch_size, 4);
}

}  // namespace

SystemResult run_system(const workloads::WorkloadProfile& w,
                        const std::string& name, schedule::Kind kind,
                        std::size_t micro_batches, std::size_t pipelines,
                        bool elastic, std::size_t advance_num,
                        Bytes memory_limit, std::size_t num_batches,
                        const fault::FaultPlan* faults) {
  auto cluster = workloads::v100_cluster(w.num_gpus);
  auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
  sim::SystemConfig sys;
  sys.kind = kind;
  sys.micro_batches = micro_batches;
  sys.num_pipelines = pipelines;
  sys.elastic_averaging = elastic;
  sys.advance_num = advance_num;
  sim::SimJob job =
      sim::build_job(w, cluster, part, sys, w.batch_size, num_batches);
  job.memory_limit = memory_limit;

  trace::Tracer tracer;
  job.tracer = &tracer;
  job.faults = faults;
  SystemResult r;
  r.name = name;
  r.sim = sim::simulate(job);
  r.analysis = trace::TraceAnalysis(tracer.collect());
  job.tracer = nullptr;  // the stored copy must not point at the local tracer
  job.faults = nullptr;  // nor at a caller-owned fault plan
  r.job = job;
  r.epoch_seconds = sim::epoch_time(r.sim, job, w.dataset_samples);
  for (const auto& g : r.sim.gpus) {
    r.peak_memory = std::max(r.peak_memory, g.peak_memory);
  }
  r.oom = r.sim.oom;
  r.micro_batches = job.micro_batches;
  r.pipelines = job.num_pipelines;
  return r;
}

std::size_t best_micro_batches(const workloads::WorkloadProfile& w,
                               schedule::Kind kind) {
  std::size_t best_m = 1;
  Seconds best_time = 1e300;
  for (std::size_t m = 1; m <= w.batch_size; m *= 2) {
    if (w.batch_size % m != 0) break;
    const SystemResult r =
        run_system(w, "probe", kind, m, 1, false, 0, /*mem limit*/ 0.0, 3);
    if (!r.oom && r.sim.time_per_batch < best_time) {
      best_time = r.sim.time_per_batch;
      best_m = m;
    }
  }
  return best_m;
}

std::vector<SystemResult> run_baselines(const workloads::WorkloadProfile& w) {
  struct Baseline {
    const char* name;
    schedule::Kind kind;
  };
  const Baseline baselines[] = {
      {"PyTorch", schedule::Kind::kDataParallel},
      {"GPipe", schedule::Kind::kAfab},
      {"PipeDream", schedule::Kind::kPipeDream},
      {"PipeDream-2BW", schedule::Kind::kPipeDream2BW},
      {"Dapple", schedule::Kind::kOneFOneB},
  };
  std::vector<SystemResult> results;
  for (const auto& b : baselines) {
    const std::size_t m = b.kind == schedule::Kind::kDataParallel
                              ? 1
                              : best_micro_batches(w, b.kind);
    results.push_back(run_system(w, b.name, b.kind, m, 1, false, 0, 0.0));
  }
  return results;
}

SystemResult run_avgpipe(const workloads::WorkloadProfile& w,
                         const std::string& name, Bytes memory_limit) {
  sim::SimJob job = base_job(w);
  auto grid = tuning::default_grid(w.batch_size, /*max pipelines=*/8);
  const auto ranked =
      tuning::ranked_predictions(job, w.batch_size, grid, memory_limit);

  // Walk the predicted ranking, accepting the first setting that actually
  // stays under the baseline's footprint when simulated (Eq. 8 is
  // approximate — e.g. it does not see the reference model). Mirrors the
  // system re-checking memory before committing to a configuration.
  for (const auto& p : ranked) {
    if (!p.feasible) break;
    job.micro_batches = p.m;
    job.num_pipelines = p.n;
    job.elastic_averaging = p.n > 1;
    job.memory_limit = memory_limit;
    job.kind = schedule::Kind::kAdvanceForward;
    const std::size_t advance = sim::adaptive_advance(job);
    SystemResult r = run_system(w, name, schedule::Kind::kAdvanceForward, p.m,
                                p.n, p.n > 1, advance, memory_limit);
    if (!r.oom) return r;
  }
  // Nothing fits: degenerate to a minimal 1F1B pipeline.
  return run_system(w, name, schedule::Kind::kAdvanceForward, 1, 1, false, 0,
                    memory_limit);
}

double relative_epochs(const std::string& system_name) {
  // Measured by bench/fig14 at reduced scale (see EXPERIMENTS.md): the
  // synchronous systems and AvgPipe need the same epochs; PipeDream's
  // per-micro-batch stale updates cost extra epochs; 2BW's one-step
  // staleness costs a little.
  if (system_name.rfind("PipeDream-2BW", 0) == 0) return 1.05;
  if (system_name.rfind("PipeDream", 0) == 0) return 1.4;
  return 1.0;
}

std::string sparkline(const StepFunction& phi, Seconds t_begin, Seconds t_end,
                      std::size_t bins) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::string out;
  const Seconds dt = (t_end - t_begin) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    // Average φ over the bucket by sampling its midpoint neighbourhood.
    const Seconds lo = t_begin + static_cast<double>(i) * dt;
    double mean = 0;
    constexpr int kSamples = 4;
    for (int s = 0; s < kSamples; ++s) {
      mean += phi.value_at(lo + dt * (0.5 + s) / (kSamples + 1));
    }
    mean /= kSamples;
    const int level = std::clamp(static_cast<int>(mean * 8.0), 0, 7);
    out += kLevels[level];
  }
  return out;
}

std::string trace_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      return argv[i] + 8;
    }
  }
  return "";
}

std::unique_ptr<fault::FaultPlan> faults_from_args(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      path = argv[i] + 9;
    }
  }
  if (path.empty()) return nullptr;
  auto plan =
      std::make_unique<fault::FaultPlan>(fault::FaultPlan::load_file(path));
  std::printf("faults: loaded plan %s (%zu stragglers, %zu links, %zu drops, "
              "%zu crashes)\n",
              path.c_str(), plan->stragglers.size(),
              plan->link_degradations.size(), plan->drops.size(),
              plan->crashes.size());
  return plan;
}

void maybe_dump_trace(const trace::TraceAnalysis& analysis,
                      const std::string& path) {
  if (path.empty()) return;
  if (!trace::write_chrome_trace_file(path, analysis.events())) {
    std::printf("trace: could not open %s\n", path.c_str());
    return;
  }
  std::printf("trace: wrote %zu events to %s\n", analysis.events().size(),
              path.c_str());
}

}  // namespace avgpipe::bench
