/// \file fig18_tuning_cost.cpp
/// Reproduces Figure 18: the cost of tuning the parallelism degrees.
/// Traversal simulates every (M, N) setting for ten batches (plus a fixed
/// per-setting startup cost); the profiling-based method runs one setting
/// for twenty batches and predicts the rest with Equations (1)-(8).
/// Expected shape: hours vs minutes — the paper reports ~2.5 h traversal
/// for GNMT/BERT (13.8 % of training time) against < 3 min profiling, and
/// 27 min vs 2 min for AWD.

#include <cstdio>

#include "bench_common.hpp"

using namespace avgpipe;

int main() {
  std::printf("== Figure 18 — tuning cost ==\n");
  Table table({"workload", "traversal", "profiling", "ratio"});

  for (const auto& w : workloads::paper_workloads()) {
    auto cluster = workloads::v100_cluster(w.num_gpus);
    auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
    sim::SystemConfig sys;
    sys.kind = schedule::Kind::kAdvanceForward;
    sys.micro_batches = 1;
    auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 4);
    auto grid = tuning::default_grid(w.batch_size, 8);

    const auto traversal = tuning::traversal_tuner(job, w.batch_size, grid,
                                                   cluster.gpu.memory);
    const auto profiling = tuning::profiling_tuner(job, w.batch_size, grid,
                                                   cluster.gpu.memory);
    table.row()
        .cell(w.name)
        .cell(format_seconds(traversal.tuning_cost))
        .cell(format_seconds(profiling.tuning_cost))
        .cell(traversal.tuning_cost / profiling.tuning_cost, 1);
  }
  table.print();
  std::printf(
      "\nPaper shape: traversal takes hours (~2.5 h for GNMT/BERT, 27 min\n"
      "for AWD); profiling takes minutes (< 3 min).\n");
  return 0;
}
