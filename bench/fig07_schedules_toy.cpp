/// \file fig07_schedules_toy.cpp
/// Reproduces Figure 7: the 2-GPU / 4-micro-batch walkthrough comparing
/// AFAB, 1F1B and 1F1B + advance forward propagation. Prints the exact
/// per-stage instruction streams (matching the paper's timeline figure) and
/// the simulated batch times t0 (AFAB), t1 (1F1B) and t_AFP, plus the
/// activation-stash counts (AFP stashes 3 on GPU 1 vs 2 for 1F1B and 4 for
/// AFAB).

#include <cstdio>

#include "bench_common.hpp"

using namespace avgpipe;

int main() {
  const auto w = workloads::toy_two_stage_profile();
  const auto cluster = workloads::v100_cluster(2);
  const auto part = partition::uniform_partition(w.layers.size(), 2);

  struct Case {
    const char* label;
    schedule::Kind kind;
    std::size_t advance;
  };
  const Case cases[] = {
      {"(a) AFAB", schedule::Kind::kAfab, 0},
      {"(b) 1F1B", schedule::Kind::kOneFOneB, 0},
      {"(c) 1F1B + advance fwd", schedule::Kind::kAdvanceForward, 2},
  };

  std::printf("== Figure 7 — schedules on one batch (K=2, M=4) ==\n\n");
  Seconds t_afab = 0;
  for (const auto& c : cases) {
    schedule::ScheduleParams params;
    params.kind = c.kind;
    params.num_stages = 2;
    params.micro_batches = 4;
    params.num_batches = 1;
    params.advance_num = c.advance;
    const auto sched = schedule::make_schedule(params);
    const auto check = schedule::check_schedule(sched, 4, 1);

    sim::SystemConfig sys;
    sys.kind = c.kind;
    sys.micro_batches = 4;
    sys.advance_num = c.advance;
    auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 1);
    const auto r = sim::simulate(job);
    if (c.kind == schedule::Kind::kAfab) t_afab = r.time_per_batch;

    std::printf("%s\n", c.label);
    for (std::size_t k = 0; k < 2; ++k) {
      std::printf("  GPU %zu: %-28s (stash <= %zu micro-batches)\n", k + 1,
                  schedule::format_stream(sched.stages[k]).c_str(),
                  check.max_in_flight[k]);
    }
    std::printf("  batch time %s (%.2fx of AFAB), peak activations GPU1 %s\n\n",
                format_seconds(r.time_per_batch).c_str(),
                r.time_per_batch / t_afab,
                format_bytes(r.gpus[0].peak_activations).c_str());
  }

  std::printf("Paper shape: t1 (1F1B) > t0 (AFAB); AFP recovers AFAB's time\n"
              "while stashing 3 micro-batches on GPU 1 instead of 4.\n");
  return 0;
}
