/// \file fig15_batch_size.cpp
/// Reproduces Figure 15: GNMT epoch time under batch sizes 64..256 for
/// GPipe versus AvgPipe(G). Expected shape: GPipe's epoch time stays nearly
/// flat (it is bubble-bound, and bigger batches do not remove bubbles) while
/// AvgPipe's advantage grows with batch size (more micro-batches to slice,
/// pipelines keep utilization up) — the paper reports 1.3x at batch 64
/// rising to 2.6x at 256.

#include <cstdio>

#include "bench_common.hpp"

using namespace avgpipe;

int main() {
  auto w = workloads::gnmt_profile();
  std::printf("== Figure 15 — GNMT epoch time vs batch size ==\n");
  Table table({"batch", "GPipe M", "GPipe epoch", "AvgPipe (M,N)",
               "AvgPipe epoch", "speedup"});

  for (std::size_t batch : {64u, 128u, 192u, 256u}) {
    w.batch_size = batch;
    const std::size_t gpipe_m =
        bench::best_micro_batches(w, schedule::Kind::kAfab);
    const auto gpipe = bench::run_system(w, "GPipe", schedule::Kind::kAfab,
                                         gpipe_m, 1, false, 0, 0.0);
    const auto avg = bench::run_avgpipe(w, "AvgPipe(G)", gpipe.peak_memory);
    table.row()
        .cell_int(static_cast<long long>(batch))
        .cell_int(static_cast<long long>(gpipe_m))
        .cell(format_seconds(gpipe.epoch_seconds))
        .cell("(" + std::to_string(avg.micro_batches) + "," +
              std::to_string(avg.pipelines) + ")")
        .cell(format_seconds(avg.epoch_seconds))
        .cell(gpipe.epoch_seconds / avg.epoch_seconds, 2);
  }
  table.print();
  std::printf(
      "\nPaper shape: GPipe's per-epoch time is flat in batch size (bubble\n"
      "bound); AvgPipe's speedup grows with batch size (1.3x -> 2.6x).\n");
  return 0;
}
