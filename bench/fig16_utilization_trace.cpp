/// \file fig16_utilization_trace.cpp
/// Reproduces Figure 16: GPU utilization over time for GNMT under GPipe,
/// PipeDream-2BW and AvgPipe(2BW). Expected shape: frequent idle troughs
/// for both baselines (bubbles for GPipe, comm stalls for 2BW); AvgPipe's
/// parallel pipelines lift the peak (the paper reports +57.8 %) and close
/// the troughs.

#include <cstdio>

#include "bench_common.hpp"

using namespace avgpipe;

int main(int argc, char** argv) {
  const std::string trace_path = bench::trace_path_from_args(argc, argv);
  // `--faults plan.json` injects a fault scenario into the AvgPipe run so the
  // timeline shows the trough a straggler/degraded link carves and how the
  // elastic pipelines fill it.
  const auto faults = bench::faults_from_args(argc, argv);
  const auto w = workloads::gnmt_profile();
  std::printf("== Figure 16 — GPU utilization over time (GNMT, GPU 1) ==\n");
  std::printf("(8-level sparkline; ' '=idle, '#'=100%%)\n\n");

  const std::size_t gpipe_m =
      bench::best_micro_batches(w, schedule::Kind::kAfab);
  const auto gpipe = bench::run_system(w, "GPipe", schedule::Kind::kAfab,
                                       gpipe_m, 1, false, 0, 0.0);
  const std::size_t bw_m =
      bench::best_micro_batches(w, schedule::Kind::kPipeDream2BW);
  const auto bw = bench::run_system(w, "PipeDream-2BW",
                                    schedule::Kind::kPipeDream2BW, bw_m, 1,
                                    false, 0, 0.0);
  // AvgPipe at the paper's GNMT configuration: 2 pipelines x 64 micro-batches.
  const auto avg = bench::run_system(w, "AvgPipe(2BW)",
                                     schedule::Kind::kAdvanceForward, 64, 2,
                                     true, 0, 0.0, /*num_batches=*/4,
                                     faults.get());

  double baseline_peak = 0;
  for (const auto* r : {&gpipe, &bw, &avg}) {
    const StepFunction phi = r->analysis.utilization(0);
    const Seconds makespan = r->analysis.span_end();
    const Seconds t0 = makespan * 0.25;
    const Seconds t1 = makespan * 0.75;
    std::printf("%-14s |%s|\n", r->name.c_str(),
                bench::sparkline(phi, t0, t1, 64).c_str());
    std::printf("%-14s peak %s  mean %s\n\n", "",
                format_percent(r->analysis.peak_utilization()).c_str(),
                format_percent(r->analysis.mean_utilization()).c_str());
    if (r != &avg) baseline_peak = std::max(baseline_peak,
                                            r->analysis.peak_utilization());
  }
  std::printf("AvgPipe peak vs baselines: +%.1f%% relative (paper: +57.8%%)\n",
              (avg.analysis.peak_utilization() / baseline_peak - 1.0) * 100.0);
  bench::maybe_dump_trace(avg.analysis, trace_path);
  return 0;
}
