/// \file fig13_utilization.cpp
/// Reproduces Figure 13: averaged GPU utilization per system. Expected
/// shape: AvgPipe clearly above all baselines on GNMT and BERT (the paper
/// reports +86.1 % and +41.3 % relative improvements), and a smaller gain
/// on AWD (+19.6 %) where the two-node setting mutes the communication
/// issue.

#include <cstdio>

#include "bench_common.hpp"

using namespace avgpipe;

int main(int argc, char** argv) {
  const std::string trace_path = bench::trace_path_from_args(argc, argv);
  // `--faults plan.json` replays the figure with an injected fault scenario
  // (applied to the AvgPipe run only — baselines stay clean as the healthy
  // reference point).
  const auto faults = bench::faults_from_args(argc, argv);
  for (const auto& w : workloads::paper_workloads()) {
    std::printf("== Figure 13 — %s averaged GPU utilization ==\n",
                w.name.c_str());
    Table table({"system", "M", "N", "mean util", "peak util"});

    auto baselines = bench::run_baselines(w);
    double best_baseline = 0;
    for (const auto& b : baselines) {
      best_baseline = std::max(best_baseline, b.analysis.mean_utilization());
      table.row()
          .cell(b.name)
          .cell_int(static_cast<long long>(b.micro_batches))
          .cell_int(static_cast<long long>(b.pipelines))
          .cell(format_percent(b.analysis.mean_utilization()))
          .cell(format_percent(b.analysis.peak_utilization()));
    }
    // AvgPipe at the paper's reported configurations: 2 pipelines with
    // 64 / 32 / 1 micro-batches for GNMT / BERT / AWD (§7.1.1).
    const std::size_t paper_m = w.name == "GNMT" ? 64 : w.name == "BERT" ? 32 : 1;
    auto cluster = workloads::v100_cluster(w.num_gpus);
    auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
    sim::SystemConfig sys;
    sys.kind = schedule::Kind::kAdvanceForward;
    sys.micro_batches = paper_m;
    sys.num_pipelines = 2;
    sys.elastic_averaging = true;
    auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 4);
    const std::size_t advance = sim::adaptive_advance(job);
    const auto a = bench::run_system(w, "AvgPipe", schedule::Kind::kAdvanceForward,
                                     paper_m, 2, true, advance, 0.0,
                                     /*num_batches=*/4, faults.get());
    table.row()
        .cell(a.name)
        .cell_int(static_cast<long long>(a.micro_batches))
        .cell_int(static_cast<long long>(a.pipelines))
        .cell(format_percent(a.analysis.mean_utilization()))
        .cell(format_percent(a.analysis.peak_utilization()));
    table.print();
    std::printf("AvgPipe vs best baseline: +%.1f%% relative\n\n",
                (a.analysis.mean_utilization() / best_baseline - 1.0) * 100.0);
    if (w.name == "GNMT") bench::maybe_dump_trace(a.analysis, trace_path);
  }
  return 0;
}
