/// \file ablation_model.cpp
/// Ablations of the simulator's calibration choices (DESIGN.md §6) — which
/// modelling decision drives which paper-level conclusion:
///
///  * concurrency gain (how far co-scheduled kernels stack): drives the
///    benefit of parallel pipelines and the max-num guideline's penalty;
///  * link duplexing (half vs full): drives the AFAB-vs-1F1B ordering;
///  * activation payload precision (fp16 vs fp32 transfers): drives how
///    much of the communication pipelines can hide.
///
/// Each section reruns the GNMT Figure-17-style comparison under one
/// modified assumption.

#include <cstdio>

#include "bench_common.hpp"

using namespace avgpipe;

namespace {

struct Outcome {
  Seconds afab, f1b;
  double avgpipe_gain;  // per-sample speedup of 2x64 AvgPipe over GPipe
};

Outcome run(double concurrency_gain, double inter_bw_scale,
            double act_scale) {
  auto w = workloads::gnmt_profile();
  for (auto& l : w.layers) l.activation_bytes_per_sample *= act_scale;
  auto cluster = workloads::v100_cluster(w.num_gpus);
  cluster.inter_node.bandwidth_bytes_per_s *= inter_bw_scale;
  auto part = partition::pipedream_partition(w, cluster, w.num_gpus);

  auto run_one = [&](schedule::Kind kind, std::size_t m, std::size_t n,
                     std::size_t advance) {
    sim::SystemConfig sys;
    sys.kind = kind;
    sys.micro_batches = m;
    sys.num_pipelines = n;
    sys.elastic_averaging = n > 1;
    sys.advance_num = advance;
    auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 4);
    job.concurrency_gain = concurrency_gain;
    job.memory_limit = 1e18;
    return sim::simulate(job);
  };

  Outcome o;
  o.afab = run_one(schedule::Kind::kAfab, 64, 1, 0).time_per_batch;
  o.f1b = run_one(schedule::Kind::kOneFOneB, 64, 1, 0).time_per_batch;
  const auto gpipe = run_one(schedule::Kind::kAfab, 16, 1, 0);
  const auto avg = run_one(schedule::Kind::kAdvanceForward, 64, 2, 0);
  o.avgpipe_gain = (gpipe.time_per_batch / 128.0) /
                   (avg.time_per_batch / 256.0);
  return o;
}

}  // namespace

int main() {
  std::printf("== Model ablations (GNMT) ==\n\n");

  std::printf("-- concurrency gain (baseline 2.5) --\n");
  Table t1({"gain", "1F1B/AFAB", "AvgPipe(2x64) vs GPipe"});
  for (double gain : {1.0, 2.5, 1e9}) {
    const Outcome o = run(gain, 1.0, 1.0);
    t1.row()
        .cell(gain > 100 ? "unbounded" : std::to_string(gain).substr(0, 4))
        .cell(o.f1b / o.afab, 3)
        .cell(o.avgpipe_gain, 3);
  }
  t1.print();
  std::printf("(parallel-pipeline benefit needs kernels to co-schedule at\n"
              " all, but an unbounded gain makes tiny micro-batches free)\n\n");

  std::printf("-- inter-node bandwidth scale (baseline 1.0 = 0.84 Gb/s) --\n");
  Table t2({"bw scale", "1F1B/AFAB", "AvgPipe(2x64) vs GPipe"});
  for (double bw : {0.5, 1.0, 4.0}) {
    const Outcome o = run(2.5, bw, 1.0);
    t2.row()
        .cell(bw, 1)
        .cell(o.f1b / o.afab, 3)
        .cell(o.avgpipe_gain, 3);
  }
  t2.print();
  std::printf("(the 1F1B penalty is a communication effect: with fast links\n"
              " the schedules converge; with slow links everything is\n"
              " wire-bound and nobody wins)\n\n");

  std::printf("-- activation payload scale (baseline 1.0 = fp16+bucketing) --\n");
  Table t3({"act scale", "1F1B/AFAB", "AvgPipe(2x64) vs GPipe"});
  for (double act : {0.5, 1.0, 2.0, 4.0}) {
    const Outcome o = run(2.5, 1.0, act);
    t3.row()
        .cell(act, 1)
        .cell(o.f1b / o.afab, 3)
        .cell(o.avgpipe_gain, 3);
  }
  t3.print();
  return 0;
}
