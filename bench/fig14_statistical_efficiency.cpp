/// \file fig14_statistical_efficiency.cpp
/// Reproduces Figure 14: statistical efficiency — epochs needed to reach the
/// target metric for PyTorch (synchronous data parallelism; GPipe/Dapple
/// share its update rule), PipeDream (multi-version stale updates),
/// PipeDream-2BW (one-step-stale updates) and AvgPipe (elastic averaging,
/// N=2).
///
/// This bench runs *real training* on laptop-scale stand-ins of the paper's
/// workloads (see DESIGN.md for the substitutions): an LSTM classifier for
/// GNMT/WMT16, a Transformer pair-classifier for BERT/QQP and a
/// weight-dropped LSTM language model for AWD/PTB. Expected shape: AvgPipe
/// matches PyTorch's epochs; PipeDream needs more (notably on AWD, where the
/// paper reports it fails to reach the target).

#include <cstdio>
#include <functional>
#include <memory>

#include "common/table.hpp"
#include "core/avgpipe.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

using namespace avgpipe;

namespace {

struct Workload {
  std::string name;
  const data::Dataset& dataset;
  std::size_t batch_size;
  nn::ModelFactory model;
  runtime::OptimizerFactory optimizer;
  /// Returns the metric; `higher_is_better` decides the comparison.
  std::function<double(nn::Sequential&, data::DataLoader&)> metric;
  double target;
  bool higher_is_better;
  std::size_t max_epochs;
};

std::size_t epochs_to_target(runtime::TrainerBase& trainer,
                             const Workload& w) {
  data::DataLoader loader(w.dataset, w.batch_size, /*seed=*/99);
  for (std::size_t epoch = 0; epoch < w.max_epochs; ++epoch) {
    const std::size_t per_iter = trainer.batches_per_iteration();
    std::size_t i = 0;
    while (i + per_iter <= loader.batches_per_epoch()) {
      std::vector<data::Batch> batches;
      for (std::size_t p = 0; p < per_iter; ++p) {
        batches.push_back(loader.batch(epoch, i++));
      }
      trainer.train_iteration(batches);
    }
    const double metric = w.metric(trainer.eval_model(), loader);
    const bool reached = w.higher_is_better ? metric >= w.target
                                            : metric <= w.target;
    if (reached) return epoch + 1;
  }
  return 0;  // did not converge
}

void run_workload(const Workload& w) {
  std::printf("== Figure 14 — %s (target %s %.3f within %zu epochs) ==\n",
              w.name.c_str(), w.higher_is_better ? ">=" : "<=", w.target,
              w.max_epochs);
  Table table({"system", "epochs", "status"});

  auto report = [&](const std::string& name, std::size_t epochs) {
    table.row()
        .cell(name)
        .cell(epochs > 0 ? std::to_string(epochs) : std::string("-"))
        .cell(epochs > 0 ? "reached" : "did not reach target");
  };

  {
    nn::Sequential model = w.model(1234);
    runtime::SyncTrainer trainer(model, w.optimizer(model.parameters()),
                                 "PyTorch");
    report("PyTorch (sync DP/GPipe/Dapple)", epochs_to_target(trainer, w));
  }
  {
    nn::Sequential model = w.model(1234);
    runtime::StalenessTrainer trainer(model, w.optimizer(model.parameters()),
                                      /*delay=*/5, /*micro_batches=*/4,
                                      /*per_micro=*/true, "PipeDream");
    report("PipeDream (stale, per-micro-batch)",
           epochs_to_target(trainer, w));
  }
  {
    nn::Sequential model = w.model(1234);
    runtime::StalenessTrainer trainer(model, w.optimizer(model.parameters()),
                                      /*delay=*/1, /*micro_batches=*/4,
                                      /*per_micro=*/false, "PipeDream-2BW");
    report("PipeDream-2BW (1-stale)", epochs_to_target(trainer, w));
  }
  {
    core::AvgPipeTrainer trainer(w.model, w.optimizer, /*pipelines=*/2);
    report("AvgPipe (elastic averaging, N=2)", epochs_to_target(trainer, w));
  }
  {
    core::SyncPolicyConfig sync;
    sync.kind = core::SyncPolicyKind::kBsp;
    core::AvgPipeTrainer trainer(w.model, w.optimizer, /*pipelines=*/2, sync);
    report("AvgPipe[bsp] (model averaging, N=2)",
           epochs_to_target(trainer, w));
  }
  {
    core::SyncPolicyConfig sync;
    sync.kind = core::SyncPolicyKind::kBmuf;
    core::AvgPipeTrainer trainer(w.model, w.optimizer, /*pipelines=*/2, sync);
    report("AvgPipe[bmuf] (block momentum, N=2)",
           epochs_to_target(trainer, w));
  }

  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  Rng rng(1);

  auto adam = [](double lr) {
    return [lr](std::vector<tensor::Variable> params) {
      return std::unique_ptr<optim::Optimizer>(
          std::make_unique<optim::Adam>(std::move(params), lr));
    };
  };
  auto sgd = [](double lr) {
    return [lr](std::vector<tensor::Variable> params) {
      return std::unique_ptr<optim::Optimizer>(
          std::make_unique<optim::Sgd>(std::move(params), lr));
    };
  };

  auto accuracy_metric = [](nn::Sequential& m, data::DataLoader& l) {
    return runtime::evaluate_accuracy(m, l, 0, 6);
  };
  auto loss_metric = [](nn::Sequential& m, data::DataLoader& l) {
    return runtime::evaluate_loss(m, l, 0, 6);
  };

  // GNMT stand-in: deep-ish LSTM classifier trained with Adam (the paper
  // trains GNMT with Adam; target BLEU becomes target accuracy here).
  data::SyntheticSeqClassification gnmt_data(384, 32, 16, 4, /*seed=*/7,
                                             /*signal=*/0.62);
  run_workload(Workload{
      "GNMT (LSTM seq classifier)", gnmt_data, 32,
      [](std::uint64_t seed) { return nn::make_gnmt_like(32, 16, 24, 2, 4, seed); },
      adam(4e-3), accuracy_metric, 0.94, true, 40});

  // BERT stand-in: Transformer pair classifier with Adam (QQP paraphrase
  // task; the paper's target is 67 % top-1 within 3 epochs).
  data::SyntheticPairClassification bert_data(384, 32, 12, 4, /*seed=*/9,
                                              /*signal=*/0.7);
  run_workload(Workload{
      "BERT (Transformer pair classifier)", bert_data, 16,
      [](std::uint64_t seed) {
        return nn::make_bert_like(32, 16, 2, 32, 2, 2, seed, 0.05);
      },
      adam(3e-3), accuracy_metric, 0.78, true, 40});

  // AWD stand-in: weight-dropped LSTM LM with SGD; target validation loss
  // slightly above the generating chain's entropy floor.
  // The paper trains AWD with a large SGD learning rate (30); a large rate
  // relative to scale is exactly what makes stale multi-version updates
  // diverge.
  data::SyntheticLanguageModel awd_data(4096, 24, 12, /*seed=*/11,
                                        /*concentration=*/0.25);
  const double floor = awd_data.entropy_floor();
  run_workload(Workload{
      "AWD (weight-dropped LSTM LM)", awd_data, 20,
      [](std::uint64_t seed) { return nn::make_awd_like(24, 16, 24, 2, seed, 0.2); },
      sgd(8.0), loss_metric, floor + 0.4, false, 40});

  std::printf(
      "Paper shape: AvgPipe matches PyTorch's statistical efficiency across\n"
      "all workloads; PipeDream's multi-version training needs more epochs\n"
      "and fails to match on AWD.\n");
  return 0;
}
