/// \file fig11_training_time.cpp
/// Reproduces Figure 11: end-to-end training time of PyTorch (data
/// parallelism), GPipe, PipeDream, PipeDream-2BW and Dapple versus AvgPipe
/// memory-matched to each baseline (AvgPipe(P/G/PD/2BW/D)), on the GNMT,
/// BERT and AWD workloads.
///
/// Total time = simulated epoch time x relative epochs-to-target (the
/// statistical-efficiency factor measured by bench/fig14 at reduced scale).
/// Expected shape (paper §7.1.1): AvgPipe beats data parallelism by ~4.7x
/// and the pipeline baselines by ~1.7x on average; PipeDream OOMs on BERT.

#include <cstdio>

#include "bench_common.hpp"

using namespace avgpipe;

int main() {
  double dp_speedup_sum = 0, pipe_speedup_sum = 0;
  int dp_count = 0, pipe_count = 0;

  for (const auto& w : workloads::paper_workloads()) {
    std::printf("== Figure 11 — %s (batch %zu, %zu GPUs) ==\n",
                w.name.c_str(), w.batch_size, w.num_gpus);
    Table table({"system", "M", "N", "epoch", "total", "vs AvgPipe", "note"});

    auto baselines = bench::run_baselines(w);
    std::vector<bench::SystemResult> avg;
    const char* suffix[] = {"P", "G", "PD", "2BW", "D"};
    for (std::size_t i = 0; i < baselines.size(); ++i) {
      avg.push_back(bench::run_avgpipe(
          w, std::string("AvgPipe(") + suffix[i] + ")",
          baselines[i].peak_memory));
    }

    auto total_time = [&](const bench::SystemResult& r) {
      return r.epoch_seconds * bench::relative_epochs(r.name);
    };

    for (std::size_t i = 0; i < baselines.size(); ++i) {
      const auto& b = baselines[i];
      const auto& a = avg[i];
      const double bt = total_time(b), at = total_time(a);
      table.row()
          .cell(b.name)
          .cell_int(static_cast<long long>(b.micro_batches))
          .cell_int(static_cast<long long>(b.pipelines))
          .cell(format_seconds(b.epoch_seconds))
          .cell(b.oom ? "OOM" : format_seconds(bt))
          .cell(b.oom ? "-" : (std::to_string(bt / at).substr(0, 4) + "x"))
          .cell(b.oom ? "out of memory" : "");
      table.row()
          .cell(a.name)
          .cell_int(static_cast<long long>(a.micro_batches))
          .cell_int(static_cast<long long>(a.pipelines))
          .cell(format_seconds(a.epoch_seconds))
          .cell(format_seconds(at))
          .cell("1.00x")
          .cell("");
      if (!b.oom) {
        const double speedup = bt / at;
        if (b.name == "PyTorch") {
          dp_speedup_sum += speedup;
          ++dp_count;
        } else {
          pipe_speedup_sum += speedup;
          ++pipe_count;
        }
      }
    }
    table.print();
    std::printf("\n");
  }

  std::printf("Average AvgPipe speedup vs data parallelism: %.2fx (paper: 4.7x)\n",
              dp_speedup_sum / dp_count);
  std::printf("Average AvgPipe speedup vs pipeline baselines: %.2fx (paper: 1.7x)\n",
              pipe_speedup_sum / pipe_count);
  return 0;
}
