/// \file sync_policy_matrix.cpp
/// Sync-policy × fault-scenario statistical-efficiency matrix (CLI over
/// core::run_matrix).
///
/// Usage:
///   sync_policy_matrix [--json=BENCH_sync_policies.json] [--steps=N]
///                      [--pipelines=N] [--seed=S]
///
/// Prints a table of epochs-to-target-loss and wall-clock per (policy,
/// scenario) cell plus the degenerate-config bit-parity gate. Exit codes:
/// 0 ok, 2 parity gate failed (some policy at N = 1 diverged from serial
/// pipelined SGD), 1 bad usage. Perf numbers are informational — CI treats
/// them warn-only — but the parity gate is a hard failure.

#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/scenario_matrix.hpp"

int main(int argc, char** argv) {
  using namespace avgpipe;
  core::MatrixSpec spec;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--steps=", 8) == 0) {
      spec.steps = static_cast<std::size_t>(std::atol(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--pipelines=", 12) == 0) {
      spec.pipelines = static_cast<std::size_t>(std::atol(argv[i] + 12));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      spec.seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      return 1;
    }
  }

  const core::MatrixResult result = core::run_matrix(spec);

  std::printf("sync-policy scenario matrix (pipelines=%zu steps=%zu "
              "target_loss=%.2f seed=%llu)\n",
              spec.pipelines, spec.steps, spec.target_loss,
              static_cast<unsigned long long>(spec.seed));
  std::printf("%-14s %-15s %12s %12s %10s %9s %10s %7s\n", "policy",
              "scenario", "final_loss", "best_loss", "epochs2tgt", "ratio",
              "wall_s", "finite");
  for (const core::CellResult& c : result.cells) {
    char epochs[32];
    if (c.epochs_to_target >= 0) {
      std::snprintf(epochs, sizeof(epochs), "%.2f", c.epochs_to_target);
    } else {
      std::snprintf(epochs, sizeof(epochs), "-");
    }
    char ratio[32];
    if (c.codec != tensor::Codec::kNone) {
      std::snprintf(ratio, sizeof(ratio), "%.2fx", c.sync_ratio);
    } else {
      std::snprintf(ratio, sizeof(ratio), "-");
    }
    std::printf("%-14s %-15s %12.4f %12.4f %10s %9s %10.3f %7s\n",
                c.label.c_str(), fault::to_string(c.scenario), c.final_loss,
                c.best_loss, epochs, ratio, c.wall_seconds,
                c.finite ? "yes" : "NO");
  }
  std::printf("\nparity gate (N=1 degenerate config vs serial pipelined "
              "SGD, bit-exact):\n");
  for (const core::PolicyParity& p : result.parity) {
    std::printf("  %-10s param_delta=%.3g loss_delta=%.3g %s\n",
                core::to_string(p.policy).c_str(), p.param_delta,
                p.loss_delta, p.ok ? "OK" : "FAIL");
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    core::write_matrix_json(result, out);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!result.parity_ok) {
    std::fprintf(stderr, "PARITY GATE FAILED (max delta %.3g)\n",
                 result.parity_delta);
    return 2;
  }
  return 0;
}
