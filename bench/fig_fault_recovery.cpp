/// \file fig_fault_recovery.cpp
/// Throughput/utilization timeline around a mid-training pipeline crash and
/// rejoin — the resilience companion to fig13/fig16. Two parts:
///
///  1. Simulator: GNMT under AvgPipe (2 pipelines), one pipeline crashed at
///     25 % of the healthy makespan and rejoined at 50 % (re-sync cost 5 %).
///     The per-GPU utilization sparklines show the trough the dead pipeline
///     leaves and the recovery; TraceAnalysis::recoveries() reports the
///     crash->rejoin latency. Expected shape: the faulted run's makespan
///     stretches by roughly the dead window (the survivor keeps its own
///     throughput — no barrier couples it to the dead peer), and utilization
///     returns to the healthy level after the rejoin.
///
///  2. Threaded runtime: a small MLP trained by core::AvgPipe while the fault
///     plan detaches pipeline 1 for a few driver steps. Loss stays finite
///     throughout, α rebalances 1/N -> 1/(N-1) -> 1/N, and the trace records
///     the same crash/rejoin events as the simulator.
///
/// `--faults plan.json` replaces the built-in crash scenario for part 1;
/// `--trace out.json` dumps the faulted simulation's events as Chrome trace
/// JSON.
///
/// Chaos soak mode (`--soak=N [--seed=S] [--json=PATH]`): replaces both
/// parts with N randomized kill/restore cycles against a durably
/// checkpointed core::AvgPipe — mid-batch worker kills at random (pipeline,
/// stage, micro-batch) crash points, periodic checkpoints, and periodic
/// bit-flip/truncation corruption of the newest checkpoint file. The run
/// *gates* on invariants (finite losses, every pipeline re-attached every
/// round, clean happens-before replay, the directory still restores at the
/// end) and exits 2 on any violation; recovery-latency / lost-work /
/// checkpoint-overhead metrics go to stdout and, with `--json`, to
/// BENCH_recovery.json (baseline: bench/baselines/). `--keep-dir=PATH`
/// checkpoints into PATH and leaves it behind for post-mortem inspection.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/rng.hpp"
#include "core/avgpipe.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "trace/happens_before.hpp"

using namespace avgpipe;

namespace {

/// Sparkline of GPU `stage` utilization over the run, with a marker row for
/// the crash/rejoin instants.
void print_timeline(const bench::SystemResult& r, std::size_t stage,
                    std::size_t bins) {
  const Seconds end = r.analysis.span_end();
  std::printf("  GPU %zu |%s|\n", stage,
              bench::sparkline(r.analysis.utilization(stage), 0, end, bins)
                  .c_str());
  const auto recs = r.analysis.recoveries();
  if (recs.empty()) return;
  std::string markers(bins, ' ');
  for (const auto& rec : recs) {
    const auto at = [&](Seconds t) {
      return std::min(bins - 1, static_cast<std::size_t>(
                                    t / end * static_cast<double>(bins)));
    };
    markers[at(rec.t_crash)] = 'C';
    if (rec.rejoined) markers[at(rec.t_rejoin)] = 'R';
  }
  std::printf("        |%s|  (C = crash, R = rejoin)\n", markers.c_str());
}

void simulated_recovery(const fault::FaultPlan* cli_plan,
                        const std::string& trace_path) {
  const auto w = workloads::gnmt_profile();
  std::printf("== Fault recovery — GNMT, AvgPipe 2x64, simulator ==\n\n");

  // Healthy reference run; its makespan anchors the built-in crash window.
  const auto healthy =
      bench::run_system(w, "healthy", schedule::Kind::kAdvanceForward, 64, 2,
                        true, 0, 0.0, /*num_batches=*/8);

  fault::FaultPlan plan;
  if (cli_plan != nullptr) {
    plan = *cli_plan;
  } else {
    fault::PipelineCrash crash;
    crash.pipeline = 1;
    crash.t_crash = healthy.sim.makespan * 0.25;
    crash.t_rejoin = healthy.sim.makespan * 0.50;
    crash.resync_seconds = healthy.sim.makespan * 0.05;
    plan.crashes.push_back(crash);
  }
  const auto faulted =
      bench::run_system(w, "crash+rejoin", schedule::Kind::kAdvanceForward, 64,
                        2, true, 0, 0.0, /*num_batches=*/8, &plan);

  Table table({"run", "makespan", "time/batch", "mean util", "peak util"});
  for (const auto* r : {&healthy, &faulted}) {
    table.row()
        .cell(r->name)
        .cell(format_seconds(r->sim.makespan))
        .cell(format_seconds(r->sim.time_per_batch))
        .cell(format_percent(r->analysis.mean_utilization()))
        .cell(format_percent(r->analysis.peak_utilization()));
  }
  table.print();
  std::printf("slowdown vs healthy: %.1f%%\n\n",
              (faulted.sim.makespan / healthy.sim.makespan - 1.0) * 100.0);

  std::printf("utilization timeline (full run, 8-level sparkline):\n");
  for (std::size_t g = 0; g < faulted.analysis.num_stages(); ++g) {
    print_timeline(faulted, g, 64);
  }
  std::printf("\n");

  for (const auto& rec : faulted.analysis.recoveries()) {
    if (rec.rejoined) {
      std::printf("pipeline %u: crashed at %s, rejoined at %s — recovery "
                  "latency %s (incl. re-sync)\n",
                  rec.pipeline, format_seconds(rec.t_crash).c_str(),
                  format_seconds(rec.t_rejoin).c_str(),
                  format_seconds(rec.latency).c_str());
    } else {
      std::printf("pipeline %u: crashed at %s and never rejoined\n",
                  rec.pipeline, format_seconds(rec.t_crash).c_str());
    }
  }
  bench::maybe_dump_trace(faulted.analysis, trace_path);
  std::printf("\n");
}

void threaded_recovery() {
  std::printf("== Fault recovery — threaded core::AvgPipe, MLP ==\n\n");
  data::SyntheticFeatures ds(128, 6, 2, 5, /*noise=*/0.15);
  data::DataLoader loader(ds, 16, 3);

  // Detach pipeline 1 before step 3, bring it back before step 6.
  fault::FaultPlan plan;
  fault::PipelineCrash crash;
  crash.pipeline = 1;
  crash.crash_at_step = 3;
  crash.rejoin_at_step = 6;
  plan.crashes.push_back(crash);

  trace::Tracer tracer;
  core::AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 4;
  config.boundaries = {3};
  config.tracer = &tracer;
  config.faults = &plan;
  core::AvgPipe system(
      [](std::uint64_t seed) { return nn::make_mlp(6, 12, 2, 2, seed); },
      [](std::vector<tensor::Variable> params) {
        return std::make_unique<optim::Sgd>(std::move(params), 0.3);
      },
      config);

  std::printf("step  loss     alive  alpha\n");
  for (std::size_t step = 0; step < 9; ++step) {
    const std::size_t epoch = step / 4, i = (step % 4) * 2;
    const double loss = system.train_iteration(
        {loader.batch(epoch, i), loader.batch(epoch, i + 1)});
    std::printf("%4zu  %.5f  %zu      %.3f\n", step, loss,
                system.alive_pipelines(), system.alpha());
  }

  const trace::TraceAnalysis analysis(tracer.collect());
  for (const auto& rec : analysis.recoveries()) {
    std::printf("\npipeline %u: detached for %s of wall time, %s\n",
                rec.pipeline, format_seconds(rec.latency).c_str(),
                rec.rejoined ? "rejoined from the reference weights"
                             : "never rejoined");
  }
}

// -- chaos soak (--soak=N) ----------------------------------------------------

/// Invariant gate: accumulate human-readable failures; any entry fails the
/// soak (exit 2) after the full report prints.
struct SoakGate {
  std::vector<std::string> failures;
  void require(bool ok, const std::string& what) {
    if (!ok) failures.push_back(what);
  }
};

/// \param keep_dir when non-empty, use (and keep) this checkpoint directory
///        instead of a throwaway mkdtemp one — CI's corrupted-checkpoint
///        negative control points ckpt_inspect at what the soak left behind.
int chaos_soak(std::size_t cycles, std::uint64_t seed,
               const std::string& json_path, const std::string& keep_dir) {
  if (cycles < 8) cycles = 8;  // need room for checkpoints + corruption
  std::printf("== Chaos soak — %zu randomized kill/restore cycles, seed %llu "
              "==\n\n",
              cycles, static_cast<unsigned long long>(seed));

  // Seeded kill plan: one mid-batch worker kill every 3 driver steps at a
  // random (pipeline, stage, micro-batch) crash point. A restored pipeline's
  // fresh runtime restarts its internal step counter, so kill records can
  // legitimately re-fire — extra chaos, deliberately kept.
  Rng chaos(seed);
  fault::FaultPlan plan;
  for (long step = 2; step < static_cast<long>(cycles); step += 3) {
    fault::WorkerKill kill;
    kill.pipeline = static_cast<int>(chaos.uniform_int(0, 1));
    kill.stage = chaos.bernoulli(0.5)
                     ? fault::kAny
                     : static_cast<int>(chaos.uniform_int(0, 1));
    kill.step = step;
    kill.micro_batch = chaos.bernoulli(0.5)
                           ? fault::kAny
                           : static_cast<int>(chaos.uniform_int(0, 2));
    plan.kills.push_back(kill);
  }

  std::string ckpt_dir = keep_dir;
  if (ckpt_dir.empty()) {
    std::string tmpl = "/tmp/avgpipe_soak_bench_XXXXXX";
    if (::mkdtemp(tmpl.data()) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed for checkpoint dir\n");
      return 1;
    }
    ckpt_dir = tmpl;
  }

  SoakGate gate;
  std::size_t corruptions = 0;
  std::vector<trace::TraceEvent> events;
  ckpt::CheckpointDir::LoadResult final_restore;
  const auto wall_begin = std::chrono::steady_clock::now();
  {
    ckpt::CheckpointDir ckpts(ckpt_dir);
    trace::Tracer tracer;
    core::AvgPipeConfig cfg;
    cfg.num_pipelines = 2;
    cfg.micro_batches = 3;
    cfg.boundaries = {2};
    cfg.checkpoints = &ckpts;
    cfg.restore_on_failure = true;
    cfg.faults = &plan;
    cfg.tracer = &tracer;
    core::AvgPipe system(
        [](std::uint64_t s) { return nn::make_mlp(6, 8, 2, 2, s); },
        [](std::vector<tensor::Variable> params) {
          return std::make_unique<optim::Sgd>(std::move(params), 0.1);
        },
        cfg);

    data::SyntheticFeatures ds(64, 6, 2, 3);
    data::DataLoader loader(ds, 12, 1);

    for (std::size_t iter = 0; iter < cycles; ++iter) {
      double loss = 0.0;
      try {
        loss = system.train_iteration(
            {loader.batch(iter, 0), loader.batch(iter, 1)});
      } catch (const std::exception& e) {
        gate.require(false, "cycle " + std::to_string(iter) +
                                ": train_iteration threw: " + e.what());
        break;
      }
      gate.require(std::isfinite(loss),
                   "cycle " + std::to_string(iter) + ": non-finite loss");
      gate.require(system.alive_pipelines() == 2,
                   "cycle " + std::to_string(iter) +
                       ": a killed pipeline was not re-attached");
      if (iter % 4 == 3) system.save_checkpoint();
      if (iter % 9 == 8 && !ckpts.entries().empty()) {
        // Corrupt the newest committed checkpoint — bit flip or torn write.
        const std::string victim =
            ckpt_dir + "/" + ckpts.entries().back().file;
        if (chaos.bernoulli(0.5)) {
          ckpt::flip_bit(victim, static_cast<std::uint64_t>(chaos.uniform_int(
                                     0, (1 << 20) - 1)));
        } else {
          ckpt::truncate_file(victim, ckpt::file_size(victim) / 2);
        }
        ++corruptions;
      }
    }
    system.synchronize();

    ckpt::TrainState state;
    final_restore = ckpts.load_latest(&state);
    gate.require(final_restore.ok,
                 "final load_latest failed: " + final_restore.error);
    events = tracer.collect();
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count();

  if (keep_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(ckpt_dir, ec);
  }

  const trace::TraceAnalysis analysis(events);
  const auto episodes = analysis.recoveries();
  gate.require(!episodes.empty(), "no kill ever fired — soak was a no-op");
  double latency_sum = 0.0, latency_max = 0.0;
  std::size_t rejoined = 0;
  for (const auto& r : episodes) {
    if (r.rejoined) ++rejoined;
    latency_sum += r.latency;
    latency_max = std::max(latency_max, r.latency);
    gate.require(r.rejoined, "pipeline " + std::to_string(r.pipeline) +
                                 " crashed and never re-attached");
  }

  // Restore split: a kRestore span's batch is the checkpoint step it loaded,
  // or -1 when no checkpoint was loadable and the pipeline fell back to a
  // broadcast rejoin from the live reference model. Its value counts the
  // manifest entries skipped over corruption on the way to a loadable one.
  const auto restores = analysis.restore_events();
  std::size_t durable = 0, broadcast = 0, manifest_fallbacks = 0;
  for (const auto& ev : restores) {
    if (ev.batch >= 0) {
      ++durable;
    } else {
      ++broadcast;
    }
    manifest_fallbacks += static_cast<std::size_t>(std::max(0.0, ev.value));
  }

  const trace::HbReport hb = trace::check_happens_before(events);
  {
    std::string details;
    for (const auto& v : hb.violations) details += "\n    " + v.what;
    gate.require(hb.ok, "happens-before replay: " + hb.summary() + details);
  }

  const std::size_t ckpt_count = analysis.checkpoint_events().size();
  gate.require(ckpt_count == cycles / 4, "checkpoint count mismatch");
  gate.require(corruptions > 0, "no corruption was ever injected");

  Table table({"metric", "value"});
  const auto row = [&table](const std::string& k, const std::string& v) {
    table.row().cell(k).cell(v);
  };
  row("cycles", std::to_string(cycles));
  row("worker kills fired", std::to_string(episodes.size()));
  row("recoveries (rejoined)", std::to_string(rejoined));
  row("mean recovery latency",
      format_seconds(episodes.empty() ? 0.0
                                      : latency_sum /
                                            static_cast<double>(
                                                episodes.size())));
  row("max recovery latency", format_seconds(latency_max));
  row("restores from checkpoint", std::to_string(durable));
  row("broadcast fallbacks", std::to_string(broadcast));
  row("manifest fallbacks", std::to_string(manifest_fallbacks));
  row("checkpoints committed", std::to_string(ckpt_count));
  row("checkpoint bytes",
      std::to_string(analysis.checkpoint_bytes()));
  row("checkpoint capture time", format_seconds(analysis.checkpoint_time()));
  row("corruptions injected", std::to_string(corruptions));
  // Lost work: each kill aborts the victim pipeline's in-flight round (its
  // micro-batches re-run after restore, the survivors' work is kept).
  row("lost pipeline-rounds", std::to_string(episodes.size()));
  row("wall time", format_seconds(wall_seconds));
  table.print();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    const char* b = "  ";
    const auto jb = [](bool v) { return v ? "true" : "false"; };
    out << "{\n";
    out << b << "\"schema\": \"avgpipe-recovery-soak-v1\",\n";
    out << b << "\"spec\": {\"cycles\": " << cycles << ", \"seed\": " << seed
        << ", \"pipelines\": 2, \"micro_batches\": 3, "
        << "\"checkpoint_every\": 4, \"corrupt_every\": 9},\n";
    out << b << "\"invariants\": {\"violations\": " << gate.failures.size()
        << ", \"all_rejoined\": " << jb(rejoined == episodes.size())
        << ", \"hb_clean\": " << jb(hb.ok)
        << ", \"final_restore_ok\": " << jb(final_restore.ok) << "},\n";
    out << b << "\"recovery\": {\"kills\": " << episodes.size()
        << ", \"rejoined\": " << rejoined << ", \"mean_latency_s\": "
        << (episodes.empty()
                ? 0.0
                : latency_sum / static_cast<double>(episodes.size()))
        << ", \"max_latency_s\": " << latency_max << "},\n";
    out << b << "\"restore\": {\"from_checkpoint\": " << durable
        << ", \"broadcast_fallbacks\": " << broadcast
        << ", \"manifest_fallbacks\": " << manifest_fallbacks << "},\n";
    out << b << "\"checkpoint\": {\"count\": " << ckpt_count
        << ", \"bytes\": " << analysis.checkpoint_bytes()
        << ", \"capture_seconds\": " << analysis.checkpoint_time()
        << ", \"corruptions_injected\": " << corruptions << "},\n";
    out << b << "\"lost_work\": {\"pipeline_rounds\": " << episodes.size()
        << ", \"micro_batches\": " << episodes.size() * 3 << "},\n";
    out << b << "\"wall_seconds\": " << wall_seconds << "\n";
    out << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!gate.failures.empty()) {
    std::fprintf(stderr, "\nSOAK FAILED — %zu invariant violation(s):\n",
                 gate.failures.size());
    for (const auto& f : gate.failures) {
      std::fprintf(stderr, "  - %s\n", f.c_str());
    }
    return 2;
  }
  std::printf("\nsoak OK — all invariants held across %zu cycles\n", cycles);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  long soak = -1;
  std::uint64_t seed = 20260809;
  std::string json_path, keep_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--soak=", 7) == 0) {
      soak = std::atol(argv[i] + 7);
    } else if (std::strcmp(argv[i], "--soak") == 0) {
      soak = 100;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--keep-dir=", 11) == 0) {
      keep_dir = argv[i] + 11;
    }
  }
  if (soak >= 0) {
    return chaos_soak(static_cast<std::size_t>(soak), seed, json_path,
                      keep_dir);
  }

  const std::string trace_path = bench::trace_path_from_args(argc, argv);
  const auto faults = bench::faults_from_args(argc, argv);
  simulated_recovery(faults.get(), trace_path);
  threaded_recovery();
  return 0;
}
