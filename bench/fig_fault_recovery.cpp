/// \file fig_fault_recovery.cpp
/// Throughput/utilization timeline around a mid-training pipeline crash and
/// rejoin — the resilience companion to fig13/fig16. Two parts:
///
///  1. Simulator: GNMT under AvgPipe (2 pipelines), one pipeline crashed at
///     25 % of the healthy makespan and rejoined at 50 % (re-sync cost 5 %).
///     The per-GPU utilization sparklines show the trough the dead pipeline
///     leaves and the recovery; TraceAnalysis::recoveries() reports the
///     crash->rejoin latency. Expected shape: the faulted run's makespan
///     stretches by roughly the dead window (the survivor keeps its own
///     throughput — no barrier couples it to the dead peer), and utilization
///     returns to the healthy level after the rejoin.
///
///  2. Threaded runtime: a small MLP trained by core::AvgPipe while the fault
///     plan detaches pipeline 1 for a few driver steps. Loss stays finite
///     throughout, α rebalances 1/N -> 1/(N-1) -> 1/N, and the trace records
///     the same crash/rejoin events as the simulator.
///
/// `--faults plan.json` replaces the built-in crash scenario for part 1;
/// `--trace out.json` dumps the faulted simulation's events as Chrome trace
/// JSON.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/avgpipe.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

using namespace avgpipe;

namespace {

/// Sparkline of GPU `stage` utilization over the run, with a marker row for
/// the crash/rejoin instants.
void print_timeline(const bench::SystemResult& r, std::size_t stage,
                    std::size_t bins) {
  const Seconds end = r.analysis.span_end();
  std::printf("  GPU %zu |%s|\n", stage,
              bench::sparkline(r.analysis.utilization(stage), 0, end, bins)
                  .c_str());
  const auto recs = r.analysis.recoveries();
  if (recs.empty()) return;
  std::string markers(bins, ' ');
  for (const auto& rec : recs) {
    const auto at = [&](Seconds t) {
      return std::min(bins - 1, static_cast<std::size_t>(
                                    t / end * static_cast<double>(bins)));
    };
    markers[at(rec.t_crash)] = 'C';
    if (rec.rejoined) markers[at(rec.t_rejoin)] = 'R';
  }
  std::printf("        |%s|  (C = crash, R = rejoin)\n", markers.c_str());
}

void simulated_recovery(const fault::FaultPlan* cli_plan,
                        const std::string& trace_path) {
  const auto w = workloads::gnmt_profile();
  std::printf("== Fault recovery — GNMT, AvgPipe 2x64, simulator ==\n\n");

  // Healthy reference run; its makespan anchors the built-in crash window.
  const auto healthy =
      bench::run_system(w, "healthy", schedule::Kind::kAdvanceForward, 64, 2,
                        true, 0, 0.0, /*num_batches=*/8);

  fault::FaultPlan plan;
  if (cli_plan != nullptr) {
    plan = *cli_plan;
  } else {
    fault::PipelineCrash crash;
    crash.pipeline = 1;
    crash.t_crash = healthy.sim.makespan * 0.25;
    crash.t_rejoin = healthy.sim.makespan * 0.50;
    crash.resync_seconds = healthy.sim.makespan * 0.05;
    plan.crashes.push_back(crash);
  }
  const auto faulted =
      bench::run_system(w, "crash+rejoin", schedule::Kind::kAdvanceForward, 64,
                        2, true, 0, 0.0, /*num_batches=*/8, &plan);

  Table table({"run", "makespan", "time/batch", "mean util", "peak util"});
  for (const auto* r : {&healthy, &faulted}) {
    table.row()
        .cell(r->name)
        .cell(format_seconds(r->sim.makespan))
        .cell(format_seconds(r->sim.time_per_batch))
        .cell(format_percent(r->analysis.mean_utilization()))
        .cell(format_percent(r->analysis.peak_utilization()));
  }
  table.print();
  std::printf("slowdown vs healthy: %.1f%%\n\n",
              (faulted.sim.makespan / healthy.sim.makespan - 1.0) * 100.0);

  std::printf("utilization timeline (full run, 8-level sparkline):\n");
  for (std::size_t g = 0; g < faulted.analysis.num_stages(); ++g) {
    print_timeline(faulted, g, 64);
  }
  std::printf("\n");

  for (const auto& rec : faulted.analysis.recoveries()) {
    if (rec.rejoined) {
      std::printf("pipeline %u: crashed at %s, rejoined at %s — recovery "
                  "latency %s (incl. re-sync)\n",
                  rec.pipeline, format_seconds(rec.t_crash).c_str(),
                  format_seconds(rec.t_rejoin).c_str(),
                  format_seconds(rec.latency).c_str());
    } else {
      std::printf("pipeline %u: crashed at %s and never rejoined\n",
                  rec.pipeline, format_seconds(rec.t_crash).c_str());
    }
  }
  bench::maybe_dump_trace(faulted.analysis, trace_path);
  std::printf("\n");
}

void threaded_recovery() {
  std::printf("== Fault recovery — threaded core::AvgPipe, MLP ==\n\n");
  data::SyntheticFeatures ds(128, 6, 2, 5, /*noise=*/0.15);
  data::DataLoader loader(ds, 16, 3);

  // Detach pipeline 1 before step 3, bring it back before step 6.
  fault::FaultPlan plan;
  fault::PipelineCrash crash;
  crash.pipeline = 1;
  crash.crash_at_step = 3;
  crash.rejoin_at_step = 6;
  plan.crashes.push_back(crash);

  trace::Tracer tracer;
  core::AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 4;
  config.boundaries = {3};
  config.tracer = &tracer;
  config.faults = &plan;
  core::AvgPipe system(
      [](std::uint64_t seed) { return nn::make_mlp(6, 12, 2, 2, seed); },
      [](std::vector<tensor::Variable> params) {
        return std::make_unique<optim::Sgd>(std::move(params), 0.3);
      },
      config);

  std::printf("step  loss     alive  alpha\n");
  for (std::size_t step = 0; step < 9; ++step) {
    const std::size_t epoch = step / 4, i = (step % 4) * 2;
    const double loss = system.train_iteration(
        {loader.batch(epoch, i), loader.batch(epoch, i + 1)});
    std::printf("%4zu  %.5f  %zu      %.3f\n", step, loss,
                system.alive_pipelines(), system.alpha());
  }

  const trace::TraceAnalysis analysis(tracer.collect());
  for (const auto& rec : analysis.recoveries()) {
    std::printf("\npipeline %u: detached for %s of wall time, %s\n",
                rec.pipeline, format_seconds(rec.latency).c_str(),
                rec.rejoined ? "rejoined from the reference weights"
                             : "never rejoined");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = bench::trace_path_from_args(argc, argv);
  const auto faults = bench::faults_from_args(argc, argv);
  simulated_recovery(faults.get(), trace_path);
  threaded_recovery();
  return 0;
}
