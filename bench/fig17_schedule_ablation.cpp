/// \file fig17_schedule_ablation.cpp
/// Reproduces Figure 17: the advance-forward-propagation ablation. For each
/// workload we run AFAB, plain 1F1B, and 1F1B + advance forward propagation
/// at the paper's AvgPipe micro-batch counts with a single pipeline (which
/// isolates the schedule effect — extra parallel pipelines mask stalls).
/// AFP's advance count is chosen by Algorithm 1 under a user-defined memory
/// limit of 1.3x the 1F1B footprint.
///
/// Expected shape (paper §7.2): AFAB is 1.15-1.2x faster than 1F1B but
/// needs far more memory; AFP buys back a chunk of that gap for a modest
/// memory premium (in our simulator the time/memory trade is linear rather
/// than the paper's near-free recovery — see EXPERIMENTS.md); on AWD (one
/// micro-batch) all three schedules coincide exactly.

#include <cstdio>

#include "bench_common.hpp"

using namespace avgpipe;

int main() {
  struct Config {
    const char* workload;
    std::size_t m;  // the paper's AvgPipe micro-batch count
  };
  const Config configs[] = {{"GNMT", 64}, {"BERT", 32}, {"AWD", 1}};

  for (const auto& cfg : configs) {
    workloads::WorkloadProfile w =
        std::string(cfg.workload) == "GNMT"   ? workloads::gnmt_profile()
        : std::string(cfg.workload) == "BERT" ? workloads::bert_profile()
                                              : workloads::awd_profile();
    std::printf("== Figure 17 — %s schedules (M=%zu) ==\n", w.name.c_str(),
                cfg.m);

    const auto afab = bench::run_system(w, "AFAB", schedule::Kind::kAfab,
                                        cfg.m, 1, false, 0, 0.0);
    const auto f1b = bench::run_system(w, "1F1B", schedule::Kind::kOneFOneB,
                                       cfg.m, 1, false, 0, 0.0);

    // Algorithm 1 under a user-defined memory limit.
    auto cluster = workloads::v100_cluster(w.num_gpus);
    auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
    sim::SystemConfig sys;
    sys.kind = schedule::Kind::kAdvanceForward;
    sys.micro_batches = cfg.m;
    auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 4);
    job.memory_limit = 1.3 * f1b.peak_memory;
    const std::size_t advance = sim::adaptive_advance(job);
    const auto afp =
        bench::run_system(w, "1F1B+AFP", schedule::Kind::kAdvanceForward,
                          cfg.m, 1, false, advance, 0.0);

    Table table({"schedule", "time/batch", "vs AFAB", "last-GPU idle",
                 "peak mem", "vs 1F1B mem"});
    for (const auto* r : {&afab, &f1b, &afp}) {
      const auto& last = r->sim.gpus.back();
      const double batches = static_cast<double>(r->job.num_batches);
      table.row()
          .cell(r->name)
          .cell(format_seconds(r->sim.time_per_batch))
          .cell(r->sim.time_per_batch / afab.sim.time_per_batch, 3)
          .cell(format_seconds((last.comm_block + last.bubble) / batches))
          .cell(format_bytes(r->peak_memory))
          .cell(r->peak_memory / f1b.peak_memory, 3);
    }
    table.print();
    std::printf("AFP advance_num chosen by Algorithm 1: %zu (K-1 = %zu)\n",
                advance, w.num_gpus - 1);

    if (w.name == "BERT") {
      std::printf("\n(c) per-GPU peak memory, BERT:\n");
      Table per_gpu({"GPU", "AFAB", "1F1B", "1F1B+AFP", "AFP vs AFAB"});
      for (std::size_t k = 0; k < w.num_gpus; ++k) {
        per_gpu.row()
            .cell_int(static_cast<long long>(k + 1))
            .cell(format_bytes(afab.sim.gpus[k].peak_memory))
            .cell(format_bytes(f1b.sim.gpus[k].peak_memory))
            .cell(format_bytes(afp.sim.gpus[k].peak_memory))
            .cell(format_percent(afp.sim.gpus[k].peak_memory /
                                     afab.sim.gpus[k].peak_memory -
                                 1.0));
      }
      per_gpu.print();
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape: AFAB 1.15-1.2x faster than 1F1B at a much higher memory\n"
      "footprint; AFP trades a bounded memory premium for speed between the\n"
      "two; AWD (M=1) shows all three schedules exactly equal.\n");
  return 0;
}
