/// \file fig02_motivation.cpp
/// Reproduces Figure 2: the motivation trace — GPU 1's utilization over time
/// while training BERT under vanilla pipeline parallelism (GPipe) and
/// PipeDream-2BW. Expected shape: periodic idle gaps (bubbles for GPipe,
/// comm stalls for 2BW) and a peak utilization around 60 % (the
/// low-arithmetic-intensity problem the paper motivates with).

#include <cstdio>

#include "bench_common.hpp"

using namespace avgpipe;

int main() {
  const auto w = workloads::bert_profile();
  std::printf("== Figure 2 — GPU 1 utilization, BERT, %zu GPUs ==\n",
              w.num_gpus);
  std::printf("(8-level sparkline of phi(t); ' '=idle, '#'=100%%)\n\n");

  for (auto kind : {schedule::Kind::kAfab, schedule::Kind::kPipeDream2BW}) {
    const std::size_t m = bench::best_micro_batches(w, kind);
    const auto r = bench::run_system(w, schedule::to_string(kind), kind, m, 1,
                                     false, 0, 0.0, 4);
    const auto& gpu1 = r.sim.gpus[0];
    const Seconds t0 = r.sim.makespan * 0.25;  // steady-state window
    const Seconds t1 = r.sim.makespan * 0.75;
    std::printf("%-14s M=%zu\n", r.name.c_str(), m);
    std::printf("  phi(t): |%s|\n",
                bench::sparkline(gpu1.utilization, t0, t1, 72).c_str());
    std::printf("  peak util %s, mean util %s, busy %s of %s per batch\n",
                format_percent(gpu1.utilization.max_value()).c_str(),
                format_percent(r.sim.mean_utilization).c_str(),
                format_seconds(gpu1.busy / 4).c_str(),
                format_seconds(r.sim.time_per_batch).c_str());
    std::printf("  idle: comm-blocked %s, bubble %s (per batch, GPU 1)\n\n",
                format_seconds(gpu1.comm_block / 4).c_str(),
                format_seconds(gpu1.bubble / 4).c_str());
  }

  std::printf("Paper shape: both baselines idle periodically; peak GPU\n"
              "utilization is ~60%% because micro-batch kernels cannot\n"
              "saturate the GPU.\n");
  return 0;
}
