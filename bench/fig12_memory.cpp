/// \file fig12_memory.cpp
/// Reproduces Figure 12: per-GPU peak memory footprints of every system on
/// the three workloads. Expected shape: PyTorch (full model + optimizer per
/// GPU) highest; PipeDream heavy from weight versions (OOM on BERT with 6
/// GPUs); PipeDream-2BW lowest among baselines; each AvgPipe(X) at or below
/// its baseline X by construction.

#include <cstdio>

#include "bench_common.hpp"

using namespace avgpipe;

int main() {
  for (const auto& w : workloads::paper_workloads()) {
    std::printf("== Figure 12 — %s peak GPU memory ==\n", w.name.c_str());
    Table table({"system", "M", "N", "peak memory", "weights+state", "oom"});

    auto baselines = bench::run_baselines(w);
    const char* suffix[] = {"P", "G", "PD", "2BW", "D"};
    for (std::size_t i = 0; i < baselines.size(); ++i) {
      const auto& b = baselines[i];
      Bytes static_mem = 0;
      for (const auto& g : b.sim.gpus) {
        static_mem = std::max(static_mem, g.static_memory);
      }
      table.row()
          .cell(b.name)
          .cell_int(static_cast<long long>(b.micro_batches))
          .cell_int(static_cast<long long>(b.pipelines))
          .cell(format_bytes(b.peak_memory))
          .cell(format_bytes(static_mem))
          .cell(b.oom ? "OOM" : "");

      const auto a = bench::run_avgpipe(
          w, std::string("AvgPipe(") + suffix[i] + ")", b.peak_memory);
      Bytes a_static = 0;
      for (const auto& g : a.sim.gpus) {
        a_static = std::max(a_static, g.static_memory);
      }
      table.row()
          .cell(a.name)
          .cell_int(static_cast<long long>(a.micro_batches))
          .cell_int(static_cast<long long>(a.pipelines))
          .cell(format_bytes(a.peak_memory))
          .cell(format_bytes(a_static))
          .cell(a.oom ? "OOM" : "");
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: PyTorch replicates the whole model per GPU (highest);\n"
      "PipeDream's K..1 weight versions OOM BERT on 6 GPUs; AvgPipe stays\n"
      "within each baseline's footprint.\n");
  return 0;
}
