/// \file fig19_tuning_result.cpp
/// Reproduces Figure 19: training time under the settings chosen by each
/// tuning strategy. Expected shape: traversal is optimal by construction;
/// "max-num" (micro-batch size one) hurts peak utilization — 1.5x slower on
/// GNMT/BERT and badly off on AWD; "max-size" (one micro-batch) leaves the
/// bubble issue unaddressed — far slower on GNMT/BERT yet best-in-class on
/// AWD; the profiling-based method lands near the traversal optimum
/// everywhere.

#include <cstdio>

#include "bench_common.hpp"

using namespace avgpipe;

int main() {
  std::printf("== Figure 19 — training time by tuning method ==\n");
  for (const auto& w : workloads::paper_workloads()) {
    auto cluster = workloads::v100_cluster(w.num_gpus);
    auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
    sim::SystemConfig sys;
    sys.kind = schedule::Kind::kAdvanceForward;
    sys.micro_batches = 1;
    auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 4);
    auto grid = tuning::default_grid(w.batch_size, 8);
    const Bytes limit = cluster.gpu.memory;

    const auto traversal =
        tuning::traversal_tuner(job, w.batch_size, grid, limit);
    const auto max_num =
        tuning::max_num_guideline(job, w.batch_size, grid, limit);
    const auto max_size =
        tuning::max_size_guideline(job, w.batch_size, grid, limit);
    const auto profiling =
        tuning::profiling_tuner(job, w.batch_size, grid, limit);

    std::printf("-- %s --\n", w.name.c_str());
    Table table({"method", "M", "N", "epoch time", "vs traversal"});
    for (const auto* r : {&traversal, &max_num, &max_size, &profiling}) {
      const Seconds epoch =
          r->time_per_sample * static_cast<double>(w.dataset_samples);
      const Seconds best =
          traversal.time_per_sample * static_cast<double>(w.dataset_samples);
      table.row()
          .cell(r->method)
          .cell_int(static_cast<long long>(r->m))
          .cell_int(static_cast<long long>(r->n))
          .cell(format_seconds(epoch))
          .cell(epoch / best, 2);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: max-num 1.5x slower than traversal on GNMT/BERT and\n"
      "15x on AWD; max-size ~23x slower on GNMT/BERT yet best for AWD;\n"
      "profiling lands near the traversal optimum on every workload.\n");
  return 0;
}
