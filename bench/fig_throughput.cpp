/// \file fig_throughput.cpp
/// End-to-end throughput of the threaded runtime: steps/s and per-stage idle
/// fraction across {AFAB, 1F1B, AFP} x {sync, async} elastic sync. Two
/// workloads:
///
///   * the original toy MLP (hidden=32), kept for continuity with the v1
///     baseline numbers, and
///   * an optional *calibrated* workload (`--calibrate[=target_ms]`) that
///     scales the MLP hidden width until one stage's work on one micro-batch
///     costs at least `target_ms` of compute. The toy model's stage step is
///     tens of microseconds, which measures channel overhead rather than
///     pipeline overlap; the calibrated model is compute-bound, which is the
///     regime the schedules are designed for.
///
/// Machine-readable output for the perf-smoke CI job:
///
///   fig_throughput --json=BENCH_runtime.json [--iters=N] [--repeats=R]
///                  [--calibrate[=target_ms]]
///
/// Timing runs are untraced (tracing perturbs the hot path); a separate
/// traced run derives per-stage idle fractions, achieved GFLOP/s, park/spin
/// counts and elastic-sync batch sizes via TraceAnalysis. Wall-clock on a
/// shared machine is noisy, so each configuration reports the best of R
/// repeats — noise only ever slows a run down.
///
/// Exit code is non-zero only on hard correctness failures (non-finite loss,
/// sync/async loss-trajectory divergence); perf deltas against the checked-in
/// baseline are warnings, following the kernel-bench policy.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/affinity.hpp"
#include "common/thread_pool.hpp"
#include "core/avgpipe.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "optim/optimizer.hpp"
#include "tensor/ops.hpp"
#include "trace/analysis.hpp"

namespace {

using namespace avgpipe;

// Pre-PR sync-mode AFP throughput on the reference machine (the only mode
// the seed supported), recorded when this bench was introduced so the
// speedup trajectory has a fixed origin.
constexpr double kPrePrItersPerSec = 850.0;

// Best v1-schema numbers from the previous checked-in baseline (toy model,
// reference machine), embedded so the JSON carries its own history: the
// calibrated campaign's "2x over baseline best" target is measured against
// these.
constexpr double kPriorBest1F1BSync = 1356.22;
constexpr double kPriorBestAfpAsync = 1256.75;

// Bench topology: 2 pipelines x 3 stages (boundaries {2,4}), 8 micro-batches.
constexpr std::size_t kNumPipelines = 2;
constexpr std::size_t kNumStages = 3;
constexpr std::size_t kMicroBatches = 8;

struct BenchConfig {
  schedule::Kind kind = schedule::Kind::kAdvanceForward;
  bool async_sync = false;
  std::size_t sync_lag = 1;
  const char* schedule_name = "afp";
};

struct BenchResult {
  std::string schedule;
  std::string mode;
  double iters_per_sec = 0;
  double ms_per_iter = 0;
  double final_loss = 0;
  std::vector<double> idle_fraction;  // per stage
  std::vector<double> gflops;         // per stage, achieved over busy time
  double parks = 0;                   // channel condvar parks, all stages
  double spins = 0;                   // channel spin-window entries
  double mean_sync_batch = 0;         // mean fused elastic-apply batch size
};

struct Calibration {
  bool enabled = false;
  double target_stage_ms = 2.0;
  std::size_t hidden = 32;
  double measured_stage_ms = 0;
  bool reached_target = false;
};

core::AvgPipe make_system(const BenchConfig& cfg, std::size_t hidden,
                          trace::Tracer* tracer,
                          core::SyncCompression compression = {}) {
  core::AvgPipeConfig config;
  config.num_pipelines = kNumPipelines;
  config.micro_batches = kMicroBatches;
  config.boundaries = {2, 4};
  config.kind = cfg.kind;
  config.advance_num = cfg.kind == schedule::Kind::kAdvanceForward ? 3 : 0;
  config.async_sync = cfg.async_sync;
  config.sync_lag = cfg.sync_lag;
  config.tracer = tracer;
  // Pinned (even when off): bench rows must not depend on the environment.
  config.sync_compression = compression;
  return core::AvgPipe(
      [hidden](std::uint64_t seed) {
        return nn::make_mlp(16, hidden, 4, 6, seed);
      },
      [](std::vector<tensor::Variable> p) {
        return std::make_unique<optim::Sgd>(std::move(p), 0.05);
      },
      config);
}

/// One stage's compute per micro-batch at the given width, in milliseconds:
/// full-model forward+backward on a full batch, divided by stages x
/// micro-batches. Best of three timed passes (noise only slows a run down).
double measure_stage_step_ms(std::size_t hidden, const data::Batch& batch) {
  nn::Sequential model = nn::make_mlp(16, hidden, 4, 6, 1234);
  auto pass = [&] {
    tensor::Variable in(batch.inputs.clone(), /*requires_grad=*/false);
    tensor::Variable out = model.forward(in);
    tensor::Variable loss = tensor::softmax_cross_entropy(out, batch.targets);
    loss.backward();
    for (auto& p : model.parameters()) p.mutable_grad().fill_(0.0);
  };
  pass();  // warm (allocations, pool spin-up)
  double best_ms = 1e300;
  for (int r = 0; r < 3; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    pass();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    best_ms = std::min(best_ms, ms);
  }
  return best_ms / static_cast<double>(kNumStages * kMicroBatches);
}

/// Scale the hidden width until one stage-step costs >= target_ms of
/// compute. Reports honestly when even the widest sweep point falls short
/// (the JSON records `reached_target` and CI treats perf as warn-only).
Calibration calibrate(double target_ms, const data::Batch& batch) {
  Calibration cal;
  cal.enabled = true;
  cal.target_stage_ms = target_ms;
  const std::size_t widths[] = {32, 64, 96, 128, 192, 256, 384, 512, 768, 1024};
  for (const std::size_t h : widths) {
    cal.hidden = h;
    cal.measured_stage_ms = measure_stage_step_ms(h, batch);
    if (cal.measured_stage_ms >= target_ms) {
      cal.reached_target = true;
      break;
    }
  }
  return cal;
}

BenchResult run_config(const BenchConfig& cfg, std::size_t hidden,
                       data::DataLoader& loader, std::size_t iters,
                       std::size_t repeats, std::size_t traced_iters) {
  BenchResult res;
  res.schedule = cfg.schedule_name;
  res.mode = cfg.async_sync ? "async" : "sync";
  auto batches_at = [&](std::size_t i) {
    return std::vector<data::Batch>{loader.batch(0, i % 5),
                                    loader.batch(0, (i + 1) % 5)};
  };

  // Untraced timing: best of `repeats` back-to-back measurement windows on
  // one system (steady state; the first window doubles as warmup validation).
  {
    core::AvgPipe system = make_system(cfg, hidden, nullptr);
    for (std::size_t i = 0; i < 5; ++i) system.train_iteration(batches_at(i));
    double best = 0;
    for (std::size_t r = 0; r < repeats; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < iters; ++i) {
        res.final_loss = system.train_iteration(batches_at(i));
      }
      system.synchronize();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      best = std::max(best, static_cast<double>(iters) / secs);
    }
    res.iters_per_sec = best;
    res.ms_per_iter = 1e3 / best;
  }

  // Traced run for per-stage idle fractions and the perf-counter layer.
  {
    trace::Tracer tracer;
    core::AvgPipe system = make_system(cfg, hidden, &tracer);
    for (std::size_t i = 0; i < 5; ++i) system.train_iteration(batches_at(i));
    tracer.clear();
    for (std::size_t i = 0; i < traced_iters; ++i) {
      system.train_iteration(batches_at(i));
    }
    system.synchronize();
    trace::TraceAnalysis analysis(tracer.collect());
    for (std::size_t s = 0; s < analysis.num_stages(); ++s) {
      res.idle_fraction.push_back(analysis.idle_fraction(s));
      res.gflops.push_back(analysis.achieved_gflops(s));
      res.parks += analysis.counter_sum(s, trace::CounterId::kParkCount);
      res.spins += analysis.counter_sum(s, trace::CounterId::kSpinCount);
    }
    res.mean_sync_batch = analysis.mean_sync_batch();
  }
  return res;
}

std::vector<BenchResult> run_suite(const std::vector<BenchConfig>& configs,
                                   std::size_t hidden,
                                   data::DataLoader& loader, std::size_t iters,
                                   std::size_t repeats,
                                   std::size_t traced_iters,
                                   bool* correctness_ok) {
  std::vector<BenchResult> results;
  for (const auto& cfg : configs) {
    results.push_back(
        run_config(cfg, hidden, loader, iters, repeats, traced_iters));
    const auto& r = results.back();
    std::string idle;
    char buf[32];
    for (double f : r.idle_fraction) {
      std::snprintf(buf, sizeof(buf), " %.2f", f);
      idle += buf;
    }
    double gf = 0;
    for (double g : r.gflops) gf = std::max(gf, g);
    std::printf(
        "%-5s %-5s %8.1f iters/s  %7.3f ms/iter  loss %.4f  idle%s"
        "  %5.2f GF/s  batch %.2f\n",
        r.schedule.c_str(), r.mode.c_str(), r.iters_per_sec, r.ms_per_iter,
        r.final_loss, idle.c_str(), gf, r.mean_sync_batch);
    if (!std::isfinite(r.final_loss)) {
      std::fprintf(stderr, "FAIL %s/%s: non-finite loss\n",
                   r.schedule.c_str(), r.mode.c_str());
      *correctness_ok = false;
    }
  }
  return results;
}

// -- quantized sync transport -------------------------------------------------

struct CompressionResult {
  std::string codec;          ///< "off" / "fp16" / "int8"
  double iters_per_sec = 0;
  double final_loss = 0;
  double wire_bytes_per_iter = 0;  ///< post-codec sync bytes moved per round
  double raw_bytes_per_iter = 0;   ///< pre-codec (f64) bytes per round
  double ratio = 1.0;              ///< raw / wire (1.0 when off)
};

/// Throughput and bytes-moved of the afp/async toy system under each sync
/// codec. The off row is the control: same config, raw f64 transport.
CompressionResult run_compression(tensor::Codec codec,
                                  data::DataLoader& loader, std::size_t iters,
                                  std::size_t repeats) {
  const BenchConfig cfg = {schedule::Kind::kAdvanceForward, true, 1, "afp"};
  core::SyncCompression compression;
  compression.codec = codec;
  CompressionResult res;
  res.codec = tensor::to_string(codec);
  auto batches_at = [&](std::size_t i) {
    return std::vector<data::Batch>{loader.batch(0, i % 5),
                                    loader.batch(0, (i + 1) % 5)};
  };

  {  // untraced timing, same discipline as run_config
    core::AvgPipe system = make_system(cfg, 32, nullptr, compression);
    for (std::size_t i = 0; i < 5; ++i) system.train_iteration(batches_at(i));
    double best = 0;
    for (std::size_t r = 0; r < repeats; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < iters; ++i) {
        res.final_loss = system.train_iteration(batches_at(i));
      }
      system.synchronize();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      best = std::max(best, static_cast<double>(iters) / secs);
    }
    res.iters_per_sec = best;
  }

  if (codec != tensor::Codec::kNone) {  // traced run for the byte counters
    trace::Tracer tracer;
    core::AvgPipe system = make_system(cfg, 32, &tracer, compression);
    const std::size_t traced_iters = 10;
    for (std::size_t i = 0; i < traced_iters; ++i) {
      system.train_iteration(batches_at(i));
    }
    system.synchronize();
    trace::TraceAnalysis analysis(tracer.collect());
    res.wire_bytes_per_iter = static_cast<double>(analysis.sync_bytes()) /
                              static_cast<double>(traced_iters);
    res.raw_bytes_per_iter = static_cast<double>(analysis.sync_bytes_raw()) /
                             static_cast<double>(traced_iters);
    res.ratio = analysis.compression_ratio();
  }
  return res;
}

/// Max |loss(sync) - loss(async)| across adjacent config pairs. At lag 0 the
/// trajectories are bit-identical (tests/elastic_test.cpp asserts that); the
/// tolerance here absorbs sync_lag-1 staleness.
double parity_delta_of(const std::vector<BenchResult>& results) {
  double parity_delta = 0;
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    parity_delta = std::max(
        parity_delta,
        std::fabs(results[i].final_loss - results[i + 1].final_loss));
  }
  return parity_delta;
}

double iters_of(const std::vector<BenchResult>& results,
                const char* schedule, const char* mode) {
  for (const auto& r : results) {
    if (r.schedule == schedule && r.mode == mode) return r.iters_per_sec;
  }
  return 0;
}

void write_systems(std::ofstream& out, const char* key,
                   const std::vector<BenchResult>& results) {
  out << "  \"" << key << "\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"schedule\": \"" << r.schedule << "\", \"mode\": \""
        << r.mode << "\", \"iters_per_sec\": " << r.iters_per_sec
        << ", \"ms_per_iter\": " << r.ms_per_iter
        << ", \"final_loss\": " << r.final_loss << ", \"idle_fraction\": [";
    for (std::size_t s = 0; s < r.idle_fraction.size(); ++s) {
      out << (s > 0 ? ", " : "") << r.idle_fraction[s];
    }
    out << "], \"gflops\": [";
    for (std::size_t s = 0; s < r.gflops.size(); ++s) {
      out << (s > 0 ? ", " : "") << r.gflops[s];
    }
    out << "], \"parks\": " << r.parks << ", \"spins\": " << r.spins
        << ", \"mean_sync_batch\": " << r.mean_sync_batch << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::size_t iters = 40;
  std::size_t repeats = 3;
  bool do_calibrate = false;
  double target_ms = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = static_cast<std::size_t>(std::atol(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--repeats=", 10) == 0) {
      repeats = static_cast<std::size_t>(std::atol(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--calibrate") == 0) {
      do_calibrate = true;
    } else if (std::strncmp(argv[i], "--calibrate=", 12) == 0) {
      do_calibrate = true;
      target_ms = std::atof(argv[i] + 12);
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      return 2;
    }
  }

  data::SyntheticFeatures ds(256, 16, 4, 11, 0.2);
  data::DataLoader loader(ds, 32, 5);

  // Environment fingerprint: throughput numbers are meaningless without the
  // thread budget and pinning policy they were measured under.
  const std::size_t num_threads = configured_num_threads();
  const std::size_t stage_workers =
      stage_workers_from_env(kNumPipelines * kNumStages);
  const char* pin_policy = to_string(pin_policy_from_env());
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("env: threads=%zu stage_workers=%zu pin=%s cores=%u\n",
              num_threads, stage_workers, pin_policy, hw);

  const std::vector<BenchConfig> configs = {
      {schedule::Kind::kAfab, false, 1, "afab"},
      {schedule::Kind::kAfab, true, 1, "afab"},
      {schedule::Kind::kOneFOneB, false, 1, "1f1b"},
      {schedule::Kind::kOneFOneB, true, 1, "1f1b"},
      {schedule::Kind::kAdvanceForward, false, 1, "afp"},
      {schedule::Kind::kAdvanceForward, true, 1, "afp"},
  };

  bool correctness_ok = true;
  std::printf("-- toy workload (hidden=32) --\n");
  const std::vector<BenchResult> results =
      run_suite(configs, 32, loader, iters, repeats, 20, &correctness_ok);

  const double parity_delta = parity_delta_of(results);
  const bool parity_ok = parity_delta <= 0.02;
  if (!parity_ok) {
    std::fprintf(stderr, "FAIL sync/async loss divergence: %.3e\n",
                 parity_delta);
    correctness_ok = false;
  }

  const double afp_async = iters_of(results, "afp", "async");
  const double speedup = afp_async / kPrePrItersPerSec;
  std::printf("afp async vs pre-PR runtime (%.0f iters/s): %.2fx\n",
              kPrePrItersPerSec, speedup);
  if (speedup < 1.3) {
    // Perf is machine-dependent; warn, never fail (CI policy: gate only on
    // hard correctness).
    std::fprintf(stderr, "WARN afp async speedup %.2fx below 1.3x target\n",
                 speedup);
  }

  // Quantized sync transport: afp/async toy system under each codec, with
  // the uncompressed run as control.
  std::printf("-- sync compression (afp async, hidden=32) --\n");
  std::vector<CompressionResult> compression_results;
  for (const tensor::Codec codec :
       {tensor::Codec::kNone, tensor::Codec::kFp16, tensor::Codec::kInt8}) {
    compression_results.push_back(
        run_compression(codec, loader, iters, repeats));
    const auto& c = compression_results.back();
    std::printf(
        "%-5s %8.1f iters/s  loss %.4f  wire %8.0f B/iter  raw %8.0f B/iter"
        "  ratio %.2fx\n",
        c.codec.c_str(), c.iters_per_sec, c.final_loss, c.wire_bytes_per_iter,
        c.raw_bytes_per_iter, c.ratio);
    if (!std::isfinite(c.final_loss)) {
      std::fprintf(stderr, "FAIL compression %s: non-finite loss\n",
                   c.codec.c_str());
      correctness_ok = false;
    }
  }
  // Warn-only perf signal (CI policy): int8 must move >= 3x fewer bytes.
  for (const auto& c : compression_results) {
    if (c.codec == "int8" && c.ratio < 3.0) {
      std::fprintf(stderr, "WARN int8 compression ratio %.2fx below 3x\n",
                   c.ratio);
    }
  }

  // Calibrated compute-bound workload.
  Calibration cal;
  std::vector<BenchResult> cal_results;
  double cal_parity_delta = 0;
  bool cal_parity_ok = true;
  if (do_calibrate) {
    const data::Batch probe = loader.batch(0, 0);
    cal = calibrate(target_ms, probe);
    std::printf(
        "-- calibrated workload: hidden=%zu, stage step %.3f ms "
        "(target %.1f ms%s) --\n",
        cal.hidden, cal.measured_stage_ms, cal.target_stage_ms,
        cal.reached_target ? "" : ", NOT reached");
    // Scale the iteration count to the heavier model so the suite stays
    // bounded (~a few seconds per config), and measure fewer but longer
    // windows.
    const double est_iter_ms = cal.measured_stage_ms *
                               static_cast<double>(kNumStages * kMicroBatches *
                                                   kNumPipelines);
    const std::size_t cal_iters = std::clamp<std::size_t>(
        static_cast<std::size_t>(3000.0 / std::max(est_iter_ms, 1.0)), 4, 40);
    cal_results = run_suite(configs, cal.hidden, loader, cal_iters, 2,
                            std::min<std::size_t>(cal_iters, 12),
                            &correctness_ok);

    cal_parity_delta = parity_delta_of(cal_results);
    cal_parity_ok = cal_parity_delta <= 0.02;
    if (!cal_parity_ok) {
      std::fprintf(stderr, "FAIL calibrated sync/async divergence: %.3e\n",
                   cal_parity_delta);
      correctness_ok = false;
    }

    // Campaign targets (warn-only: one-core CI machines cannot demonstrate
    // pipeline parallelism, so these gate nothing).
    const double c_afp = iters_of(cal_results, "afp", "async");
    const double c_1f1b = iters_of(cal_results, "1f1b", "sync");
    const double c_afab = iters_of(cal_results, "afab", "sync");
    const double vs_prior = c_afp / kPriorBest1F1BSync;
    std::printf("calibrated afp async vs prior baseline best: %.2fx\n",
                vs_prior);
    if (!(c_afp > c_1f1b && c_1f1b > c_afab)) {
      std::fprintf(stderr,
                   "WARN calibrated ordering afp(%.1f) > 1f1b(%.1f) > "
                   "afab(%.1f) not met\n",
                   c_afp, c_1f1b, c_afab);
    }
    for (const auto& r : cal_results) {
      if (r.schedule != "afp" || r.mode != "async") continue;
      for (std::size_t s = 0; s < r.idle_fraction.size(); ++s) {
        if (r.idle_fraction[s] >= 0.5) {
          std::fprintf(stderr, "WARN calibrated afp idle[%zu] %.2f >= 0.5\n",
                       s, r.idle_fraction[s]);
        }
      }
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    out << "{\n  \"schema\": \"avgpipe-runtime-bench-v2\",\n";
    out << "  \"pre_pr_iters_per_sec\": " << kPrePrItersPerSec << ",\n";
    out << "  \"afp_async_speedup_vs_pre_pr\": " << speedup << ",\n";
    out << "  \"env\": {\"num_threads\": " << num_threads
        << ", \"stage_workers\": " << stage_workers << ", \"pin_policy\": \""
        << pin_policy << "\", \"hardware_concurrency\": " << hw << "},\n";
    out << "  \"prior_baseline\": {\"schema\": \"avgpipe-runtime-bench-v1\", "
        << "\"best_1f1b_sync_iters_per_sec\": " << kPriorBest1F1BSync
        << ", \"best_afp_async_iters_per_sec\": " << kPriorBestAfpAsync
        << "},\n";
    out << "  \"calibration\": {\"enabled\": "
        << (cal.enabled ? "true" : "false")
        << ", \"target_stage_ms\": " << cal.target_stage_ms
        << ", \"hidden\": " << cal.hidden
        << ", \"measured_stage_ms\": " << cal.measured_stage_ms
        << ", \"reached_target\": " << (cal.reached_target ? "true" : "false")
        << "},\n";
    write_systems(out, "systems", results);
    if (cal.enabled) write_systems(out, "calibrated_systems", cal_results);
    out << "  \"compression\": [\n";
    for (std::size_t i = 0; i < compression_results.size(); ++i) {
      const auto& c = compression_results[i];
      out << "    {\"codec\": \"" << c.codec
          << "\", \"iters_per_sec\": " << c.iters_per_sec
          << ", \"final_loss\": " << c.final_loss
          << ", \"wire_bytes_per_iter\": " << c.wire_bytes_per_iter
          << ", \"raw_bytes_per_iter\": " << c.raw_bytes_per_iter
          << ", \"ratio\": " << c.ratio << "}"
          << (i + 1 < compression_results.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"parity_delta\": " << parity_delta << ",\n";
    out << "  \"parity_ok\": " << (parity_ok ? "true" : "false");
    if (cal.enabled) {
      out << ",\n  \"calibrated_parity_delta\": " << cal_parity_delta
          << ",\n  \"calibrated_parity_ok\": "
          << (cal_parity_ok ? "true" : "false");
    }
    out << "\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return correctness_ok ? 0 : 1;
}
