/// \file fig_throughput.cpp
/// End-to-end throughput of the threaded runtime: steps/s and per-stage idle
/// fraction across {AFAB, 1F1B, AFP} x {sync, async} elastic sync, on a
/// fixed small-MLP workload. Machine-readable output for the perf-smoke CI
/// job:
///
///   fig_throughput --json=BENCH_runtime.json [--iters=N] [--repeats=R]
///
/// Timing runs are untraced (tracing perturbs the hot path); a separate
/// traced run derives the idle fractions via TraceAnalysis. Wall-clock on a
/// shared machine is noisy, so each configuration reports the best of R
/// repeats — noise only ever slows a run down.
///
/// Exit code is non-zero only on hard correctness failures (non-finite loss,
/// sync/async loss-trajectory divergence); perf deltas against the checked-in
/// baseline are warnings, following the kernel-bench policy.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/avgpipe.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "optim/optimizer.hpp"
#include "trace/analysis.hpp"

namespace {

using namespace avgpipe;

// Pre-PR sync-mode AFP throughput on the reference machine (the only mode
// the seed supported), recorded when this bench was introduced so the
// speedup trajectory has a fixed origin.
constexpr double kPrePrItersPerSec = 850.0;

struct BenchConfig {
  schedule::Kind kind = schedule::Kind::kAdvanceForward;
  bool async_sync = false;
  std::size_t sync_lag = 1;
  const char* schedule_name = "afp";
};

struct BenchResult {
  std::string schedule;
  std::string mode;
  double iters_per_sec = 0;
  double ms_per_iter = 0;
  double final_loss = 0;
  std::vector<double> idle_fraction;  // per stage
};

core::AvgPipe make_system(const BenchConfig& cfg, trace::Tracer* tracer) {
  core::AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 8;
  config.boundaries = {2, 4};
  config.kind = cfg.kind;
  config.advance_num = cfg.kind == schedule::Kind::kAdvanceForward ? 3 : 0;
  config.async_sync = cfg.async_sync;
  config.sync_lag = cfg.sync_lag;
  config.tracer = tracer;
  return core::AvgPipe(
      [](std::uint64_t seed) { return nn::make_mlp(16, 32, 4, 6, seed); },
      [](std::vector<tensor::Variable> p) {
        return std::make_unique<optim::Sgd>(std::move(p), 0.05);
      },
      config);
}

BenchResult run_config(const BenchConfig& cfg, data::DataLoader& loader,
                       std::size_t iters, std::size_t repeats) {
  BenchResult res;
  res.schedule = cfg.schedule_name;
  res.mode = cfg.async_sync ? "async" : "sync";
  auto batches_at = [&](std::size_t i) {
    return std::vector<data::Batch>{loader.batch(0, i % 5),
                                    loader.batch(0, (i + 1) % 5)};
  };

  // Untraced timing: best of `repeats` back-to-back measurement windows on
  // one system (steady state; the first window doubles as warmup validation).
  {
    core::AvgPipe system = make_system(cfg, nullptr);
    for (std::size_t i = 0; i < 5; ++i) system.train_iteration(batches_at(i));
    double best = 0;
    for (std::size_t r = 0; r < repeats; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < iters; ++i) {
        res.final_loss = system.train_iteration(batches_at(i));
      }
      system.synchronize();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      best = std::max(best, static_cast<double>(iters) / secs);
    }
    res.iters_per_sec = best;
    res.ms_per_iter = 1e3 / best;
  }

  // Traced run for per-stage idle fractions.
  {
    trace::Tracer tracer;
    core::AvgPipe system = make_system(cfg, &tracer);
    for (std::size_t i = 0; i < 5; ++i) system.train_iteration(batches_at(i));
    tracer.clear();
    for (std::size_t i = 0; i < 20; ++i) system.train_iteration(batches_at(i));
    system.synchronize();
    trace::TraceAnalysis analysis(tracer.collect());
    for (std::size_t s = 0; s < analysis.num_stages(); ++s) {
      res.idle_fraction.push_back(analysis.idle_fraction(s));
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::size_t iters = 40;
  std::size_t repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = static_cast<std::size_t>(std::atol(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--repeats=", 10) == 0) {
      repeats = static_cast<std::size_t>(std::atol(argv[i] + 10));
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      return 2;
    }
  }

  data::SyntheticFeatures ds(256, 16, 4, 11, 0.2);
  data::DataLoader loader(ds, 32, 5);

  const std::vector<BenchConfig> configs = {
      {schedule::Kind::kAfab, false, 1, "afab"},
      {schedule::Kind::kAfab, true, 1, "afab"},
      {schedule::Kind::kOneFOneB, false, 1, "1f1b"},
      {schedule::Kind::kOneFOneB, true, 1, "1f1b"},
      {schedule::Kind::kAdvanceForward, false, 1, "afp"},
      {schedule::Kind::kAdvanceForward, true, 1, "afp"},
  };
  std::vector<BenchResult> results;
  bool correctness_ok = true;
  for (const auto& cfg : configs) {
    results.push_back(run_config(cfg, loader, iters, repeats));
    const auto& r = results.back();
    std::string idle;
    char buf[32];
    for (double f : r.idle_fraction) {
      std::snprintf(buf, sizeof(buf), " %.2f", f);
      idle += buf;
    }
    std::printf("%-5s %-5s %8.1f iters/s  %6.3f ms/iter  loss %.4f  idle%s\n",
                r.schedule.c_str(), r.mode.c_str(), r.iters_per_sec,
                r.ms_per_iter, r.final_loss, idle.c_str());
    if (!std::isfinite(r.final_loss)) {
      std::fprintf(stderr, "FAIL %s/%s: non-finite loss\n",
                   r.schedule.c_str(), r.mode.c_str());
      correctness_ok = false;
    }
  }

  // Loss-trajectory parity: the same seeds and data must converge to the
  // same loss whether the elastic sync is on or off the critical path. The
  // tolerance absorbs sync_lag staleness (at lag 0 the trajectories are
  // bit-identical; tests/elastic_test.cpp asserts that).
  double parity_delta = 0;
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    parity_delta = std::max(
        parity_delta,
        std::fabs(results[i].final_loss - results[i + 1].final_loss));
  }
  const bool parity_ok = parity_delta <= 0.02;
  if (!parity_ok) {
    std::fprintf(stderr, "FAIL sync/async loss divergence: %.3e\n",
                 parity_delta);
    correctness_ok = false;
  }

  double afp_async = 0;
  for (const auto& r : results) {
    if (r.schedule == "afp" && r.mode == "async") afp_async = r.iters_per_sec;
  }
  const double speedup = afp_async / kPrePrItersPerSec;
  std::printf("afp async vs pre-PR runtime (%.0f iters/s): %.2fx\n",
              kPrePrItersPerSec, speedup);
  if (speedup < 1.3) {
    // Perf is machine-dependent; warn, never fail (CI policy: gate only on
    // hard correctness).
    std::fprintf(stderr, "WARN afp async speedup %.2fx below 1.3x target\n",
                 speedup);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    out << "{\n  \"schema\": \"avgpipe-runtime-bench-v1\",\n";
    out << "  \"pre_pr_iters_per_sec\": " << kPrePrItersPerSec << ",\n";
    out << "  \"afp_async_speedup_vs_pre_pr\": " << speedup << ",\n";
    out << "  \"systems\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      out << "    {\"schedule\": \"" << r.schedule << "\", \"mode\": \""
          << r.mode << "\", \"iters_per_sec\": " << r.iters_per_sec
          << ", \"ms_per_iter\": " << r.ms_per_iter
          << ", \"final_loss\": " << r.final_loss << ", \"idle_fraction\": [";
      for (std::size_t s = 0; s < r.idle_fraction.size(); ++s) {
        out << (s > 0 ? ", " : "") << r.idle_fraction[s];
      }
      out << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"parity_delta\": " << parity_delta << ",\n";
    out << "  \"parity_ok\": " << (parity_ok ? "true" : "false") << "\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return correctness_ok ? 0 : 1;
}
