/// \file tune_parallelism.cpp
/// Domain example: the profiling-based tuner (paper §5) end to end on the
/// GNMT workload profile. Profiles one setting of (M, N) on the simulated
/// cluster, predicts every other setting with Equations (1)-(8), prints the
/// predicted grid, and verifies the chosen setting against a full
/// simulation.
///
/// Run:  ./build/examples/tune_parallelism

#include <cstdio>

#include "common/table.hpp"
#include "sim/simulator.hpp"
#include "tuning/tuner.hpp"
#include "workloads/cluster.hpp"

using namespace avgpipe;

int main() {
  const auto w = workloads::gnmt_profile();
  const auto cluster = workloads::v100_cluster(w.num_gpus);
  const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);

  std::printf("Workload: %s — batch %zu on %zu GPUs\n", w.name.c_str(),
              w.batch_size, w.num_gpus);
  std::printf("PipeDream partition (first layer of each stage):");
  for (auto b : part.stage_begin) std::printf(" %zu", b);
  std::printf("\n\n");

  sim::SystemConfig sys;
  sys.kind = schedule::Kind::kAdvanceForward;
  sys.micro_batches = 1;
  auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 4);

  // Phase 1: profile one setting (large M, N=1 per §5.2.1).
  const auto profile = tuning::run_profile(job, /*m=*/16, /*n=*/1);
  std::printf("Profiled (M=16, N=1): %s per batch, cost %s\n",
              format_seconds(profile.time_per_batch).c_str(),
              format_seconds(profile.profiling_cost).c_str());
  for (std::size_t k = 0; k < profile.gpus.size(); ++k) {
    const auto& g = profile.gpus[k];
    std::printf("  GPU %zu: T_gpu %s, T_comm %s, F_mod %s, F_dat %s\n", k + 1,
                format_seconds(g.t_gpu).c_str(),
                format_seconds(g.t_comm).c_str(),
                format_bytes(g.f_mod).c_str(), format_bytes(g.f_dat).c_str());
  }

  // Phase 2: predict the whole grid.
  std::printf("\nPredicted time per sample (ms) and memory per GPU:\n");
  Table table({"M", "N=1", "N=2", "N=3", "N=4", "peak mem (N=2)"});
  for (std::size_t m = 4; m <= w.batch_size; m *= 2) {
    auto row = table.row();
    row.cell_int(static_cast<long long>(m));
    for (std::size_t n = 1; n <= 4; ++n) {
      const auto p = tuning::predict(profile, m, n, w.batch_size,
                                     cluster.gpu.memory);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f%s", p.t_per_sample * 1e3,
                    p.feasible ? "" : "!");
      row.cell(std::string(buf));
    }
    row.cell(format_bytes(
        tuning::predict(profile, m, 2, w.batch_size, 0.0).peak_memory));
  }
  table.print();

  // Phase 3: choose and verify.
  auto grid = tuning::default_grid(w.batch_size, 4);
  const auto choice = tuning::profiling_tuner(job, w.batch_size, grid,
                                              cluster.gpu.memory);
  std::printf("\nChosen degrees: M=%zu, N=%zu (tuning cost %s)\n", choice.m,
              choice.n, format_seconds(choice.tuning_cost).c_str());

  bool oom = false;
  const Seconds measured = tuning::measure_setting(
      job, w.batch_size, choice.m, choice.n, cluster.gpu.memory, &oom);
  std::printf("Verified by simulation: %.3f ms/sample%s\n", measured * 1e3,
              oom ? " (OOM!)" : "");
  return 0;
}
