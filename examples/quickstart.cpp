/// \file quickstart.cpp
/// Five-minute tour of the AvgPipe public API:
///   1. build a model factory and an optimizer factory,
///   2. construct the full threaded system — N parallel pipelines, each
///      partitioned over stage workers, plus the asynchronous reference
///      process,
///   3. feed it batches and watch the reference model converge.
///
/// Run:  ./build/examples/quickstart

#include <cstdio>

#include "core/avgpipe.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

using namespace avgpipe;

int main() {
  // A small classification task: Gaussian blobs in 8 dimensions.
  data::SyntheticFeatures dataset(512, 8, 4, /*seed=*/42, /*noise=*/0.25);
  data::DataLoader loader(dataset, /*batch=*/32, /*seed=*/1);

  // Any Sequential model works; pipelines cut it at layer boundaries.
  nn::ModelFactory model = [](std::uint64_t seed) {
    return nn::make_mlp(/*in=*/8, /*hidden=*/32, /*depth=*/3, /*classes=*/4,
                        seed);
  };
  // Any optimizer works — the framework is decoupled from it (paper §3.1).
  runtime::OptimizerFactory adam = [](std::vector<tensor::Variable> params) {
    return std::make_unique<optim::Adam>(std::move(params), 0.01);
  };

  core::AvgPipeConfig config;
  config.num_pipelines = 2;   // N parallel pipelines (elastic averaging)
  config.micro_batches = 4;   // M micro-batches per batch
  config.boundaries = {3};    // cut the 7-layer MLP into two stages
  config.kind = schedule::Kind::kAdvanceForward;  // 1F1B + AFP

  core::AvgPipe system(model, adam, config);
  std::printf("AvgPipe: %zu pipelines, alpha = %.2f\n",
              system.num_pipelines(), system.alpha());

  for (std::size_t epoch = 0; epoch < 8; ++epoch) {
    double loss = 0;
    std::size_t iters = 0;
    for (std::size_t i = 0; i + 1 < loader.batches_per_epoch(); i += 2) {
      loss += system.train_iteration(
          {loader.batch(epoch, i), loader.batch(epoch, i + 1)});
      ++iters;
    }
    const double acc =
        runtime::evaluate_accuracy(system.eval_model(), loader, 0, 4);
    std::printf("epoch %zu: loss %.4f, reference-model accuracy %.1f%%\n",
                epoch + 1, loss / static_cast<double>(iters), 100.0 * acc);
  }
  return 0;
}
