/// \file simulate_cli.cpp
/// Command-line front end for the cluster simulator: run any (workload,
/// system, M, N) combination and print the timing/memory/utilization
/// breakdown. Useful for exploring configurations beyond the paper's grid.
///
/// Usage:
///   simulate_cli [workload] [system] [M] [N]
///     workload: gnmt | bert | awd | toy          (default gnmt)
///     system:   avgpipe | gpipe | 1f1b | pipedream | 2bw | dp
///                                                (default avgpipe)
///     M: micro-batches per batch                 (default 8)
///     N: parallel pipelines (avgpipe only)       (default 2)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.hpp"
#include "sim/simulator.hpp"
#include "tuning/tuner.hpp"

using namespace avgpipe;

namespace {

workloads::WorkloadProfile pick_workload(const char* name) {
  if (std::strcmp(name, "bert") == 0) return workloads::bert_profile();
  if (std::strcmp(name, "awd") == 0) return workloads::awd_profile();
  if (std::strcmp(name, "toy") == 0) return workloads::toy_two_stage_profile();
  return workloads::gnmt_profile();
}

schedule::Kind pick_kind(const char* name) {
  if (std::strcmp(name, "gpipe") == 0) return schedule::Kind::kAfab;
  if (std::strcmp(name, "1f1b") == 0) return schedule::Kind::kOneFOneB;
  if (std::strcmp(name, "pipedream") == 0) return schedule::Kind::kPipeDream;
  if (std::strcmp(name, "2bw") == 0) return schedule::Kind::kPipeDream2BW;
  if (std::strcmp(name, "dp") == 0) return schedule::Kind::kDataParallel;
  return schedule::Kind::kAdvanceForward;
}

}  // namespace

int main(int argc, char** argv) {
  const char* wname = argc > 1 ? argv[1] : "gnmt";
  const char* sname = argc > 2 ? argv[2] : "avgpipe";
  const std::size_t m = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;
  std::size_t n = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 2;

  const auto w = pick_workload(wname);
  const auto kind = pick_kind(sname);
  if (kind != schedule::Kind::kAdvanceForward) n = 1;

  const auto cluster = workloads::v100_cluster(w.num_gpus);
  const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);

  sim::SystemConfig sys;
  sys.kind = kind;
  sys.micro_batches = kind == schedule::Kind::kDataParallel ? 1 : m;
  sys.num_pipelines = n;
  sys.elastic_averaging = n > 1;
  auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 4);
  if (kind == schedule::Kind::kAdvanceForward) {
    job.advance_num = sim::adaptive_advance(job);
  }
  const auto r = sim::simulate(job);

  std::printf("%s on %s: %s, M=%zu, N=%zu%s\n", sname, wname,
              schedule::to_string(kind).c_str(), job.micro_batches, n,
              kind == schedule::Kind::kAdvanceForward
                  ? (" (advance_num=" + std::to_string(job.advance_num) + ")")
                        .c_str()
                  : "");
  std::printf("time per iteration: %s  (%.3f ms/sample)\n",
              format_seconds(r.time_per_batch).c_str(),
              r.time_per_batch /
                  (static_cast<double>(n) *
                   static_cast<double>(job.batch_size)) *
                  1e3);
  std::printf("epoch time:         %s\n",
              format_seconds(sim::epoch_time(r, job, w.dataset_samples))
                  .c_str());
  std::printf("mean utilization:   %s%s\n",
              format_percent(r.mean_utilization).c_str(),
              r.oom ? "   ** OUT OF MEMORY **" : "");

  Table table({"GPU", "busy/batch", "comm wait", "bubble", "peak mem"});
  const double batches = static_cast<double>(job.num_batches);
  for (std::size_t k = 0; k < r.gpus.size(); ++k) {
    const auto& g = r.gpus[k];
    table.row()
        .cell_int(static_cast<long long>(k + 1))
        .cell(format_seconds(g.busy / batches))
        .cell(format_seconds(g.comm_block / batches))
        .cell(format_seconds(g.bubble / batches))
        .cell(format_bytes(g.peak_memory));
  }
  table.print();
  return 0;
}
