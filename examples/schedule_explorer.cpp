/// \file schedule_explorer.cpp
/// Domain example: explore pipeline schedules interactively-ish. Prints the
/// per-stage instruction streams and activation-stash bounds for every
/// schedule kind at a chosen (K, M), then simulates each on the toy 2-stage
/// profile to show the time/memory trade — the Figure 7 story, but
/// parameterised.
///
/// Run:  ./build/examples/schedule_explorer [K] [M]

#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "partition/partitioner.hpp"
#include "schedule/schedule.hpp"
#include "sim/simulator.hpp"
#include "workloads/profile.hpp"

using namespace avgpipe;

int main(int argc, char** argv) {
  const std::size_t k = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2;
  const std::size_t m = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  AVGPIPE_CHECK(k >= 1 && k <= 8 && m >= 1 && m <= 64,
                "usage: schedule_explorer [K in 1..8] [M in 1..64]");

  std::printf("Schedules for K=%zu stages, M=%zu micro-batches\n\n", k, m);

  struct Case {
    const char* label;
    schedule::Kind kind;
    std::size_t advance;
  };
  const Case cases[] = {
      {"AFAB (GPipe)", schedule::Kind::kAfab, 0},
      {"1F1B (Dapple / 2BW)", schedule::Kind::kOneFOneB, 0},
      {"1F1B + advance fwd (K)", schedule::Kind::kAdvanceForward, k},
      {"1F1B + advance fwd (K+2)", schedule::Kind::kAdvanceForward, k + 2},
      {"PipeDream (flush-free)", schedule::Kind::kPipeDream, 0},
  };

  for (const auto& c : cases) {
    schedule::ScheduleParams params;
    params.kind = c.kind;
    params.num_stages = k;
    params.micro_batches = m;
    params.num_batches = 1;
    params.advance_num = std::min(c.advance, m + k);
    if (c.kind == schedule::Kind::kAdvanceForward &&
        params.advance_num + 1 < k) {
      continue;  // below the 1F1B minimum for this K
    }
    const auto sched = schedule::make_schedule(params);
    const auto check = schedule::check_schedule(sched, m, 1);
    std::printf("%s%s\n", c.label, check.ok ? "" : "  [INVALID]");
    for (std::size_t stage = 0; stage < k; ++stage) {
      std::printf("  stage %zu (stash <= %2zu): %s\n", stage,
                  check.max_in_flight[stage],
                  schedule::format_stream(sched.stages[stage]).c_str());
    }
    std::printf("\n");
  }

  // Simulate the flushed schedules on a toy profile stretched to K stages.
  if (k >= 2) {
    std::printf("Simulated on a %zu-stage toy cluster:\n", k);
    auto w = workloads::toy_two_stage_profile();
    while (w.layers.size() < k) w.layers.push_back(w.layers.back());
    w.batch_size = std::max<std::size_t>(w.batch_size, m);
    auto cluster = workloads::v100_cluster(k + (k % 2));
    auto part = partition::uniform_partition(w.layers.size(), k);

    Table table({"schedule", "batch time", "peak memory"});
    for (auto kind : {schedule::Kind::kAfab, schedule::Kind::kOneFOneB,
                      schedule::Kind::kAdvanceForward}) {
      sim::SystemConfig sys;
      sys.kind = kind;
      sys.micro_batches = m;
      sys.advance_num = kind == schedule::Kind::kAdvanceForward ? k : 0;
      auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 2);
      const auto r = sim::simulate(job);
      Bytes peak = 0;
      for (const auto& g : r.gpus) peak = std::max(peak, g.peak_memory);
      table.row()
          .cell(schedule::to_string(kind))
          .cell(format_seconds(r.time_per_batch))
          .cell(format_bytes(peak));
    }
    table.print();
  }
  return 0;
}
