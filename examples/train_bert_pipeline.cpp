/// \file train_bert_pipeline.cpp
/// Domain example: fine-tune a (laptop-scale) BERT-style Transformer on a
/// synthetic sentence-pair paraphrase task — the shape of the paper's
/// BERT/QQP workload — with two elastic pipelines, each partitioned into
/// two stages around the encoder stack, trained with Adam under the
/// advance-forward-propagation schedule.
///
/// Run:  ./build/examples/train_bert_pipeline

#include <cstdio>

#include "core/avgpipe.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

using namespace avgpipe;

int main() {
  // Sentence pairs: label 1 when both halves come from the same topic.
  data::SyntheticPairClassification dataset(384, /*vocab=*/48, /*seq=*/16,
                                            /*topics=*/4, /*seed=*/3,
                                            /*signal=*/0.8);
  data::DataLoader loader(dataset, /*batch=*/16, /*seed=*/5);

  nn::ModelFactory bert = [](std::uint64_t seed) {
    // embedding + 2 encoder layers + LN + pool + classifier = 6 layers.
    return nn::make_bert_like(/*vocab=*/48, /*d_model=*/32, /*heads=*/4,
                              /*d_ff=*/64, /*encoder_layers=*/2,
                              /*classes=*/2, seed, /*dropout=*/0.05);
  };
  runtime::OptimizerFactory adam = [](std::vector<tensor::Variable> params) {
    return std::make_unique<optim::Adam>(std::move(params), 2e-3);
  };

  core::AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 4;
  config.boundaries = {2};  // stage 0: embed + encoder0 | stage 1: the rest
  config.kind = schedule::Kind::kAdvanceForward;

  core::AvgPipe system(bert, adam, config);

  std::printf("Fine-tuning BERT-style pair classifier with %zu elastic "
              "pipelines...\n", system.num_pipelines());
  for (std::size_t epoch = 0; epoch < 12; ++epoch) {
    double loss = 0;
    std::size_t iters = 0;
    for (std::size_t i = 0; i + 1 < loader.batches_per_epoch(); i += 2) {
      loss += system.train_iteration(
          {loader.batch(epoch, i), loader.batch(epoch, i + 1)});
      ++iters;
    }
    const double acc =
        runtime::evaluate_accuracy(system.eval_model(), loader, 0, 6);
    std::printf("epoch %2zu: train loss %.4f, accuracy %.1f%%\n", epoch + 1,
                loss / static_cast<double>(iters), 100.0 * acc);
    if (acc >= 0.9) {
      std::printf("target reached.\n");
      break;
    }
  }
  return 0;
}
